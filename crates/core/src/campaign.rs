//! Adversarial fault-campaign driver: sweep generated multi-event fault
//! schedules across the solver preset matrix and hold every run to the
//! **converge-or-honestly-fail oracle**.
//!
//! The oracle is the resilience contract the paper's reliable-computing
//! argument rests on: under *any* fault load a solve must either
//!
//! 1. return a solution that passes an independent, charged true-residual
//!    verification ([`CaseOutcome::ConvergedVerified`]),
//! 2. detect the corruption itself ([`CaseOutcome::DetectedByPolicy`]) or
//!    have its false convergence claim caught by the harness verification
//!    ([`CaseOutcome::DetectedByVerification`] — the silent-data-corruption
//!    threat made visible),
//! 3. fail *honestly*: an explicit non-converged stop reason
//!    ([`CaseOutcome::HonestFailure`]) or an explicit error
//!    ([`CaseOutcome::Errored`]),
//!
//! and it must never hang (a virtual-time budget cap stands in for a
//! wall-clock watchdog), never return NaN/garbage as success, and never
//! leave ranks disagreeing about what happened (outcome classification is
//! derived from globally reduced scalars, so it must be rank-symmetric).
//!
//! A campaign case is one `(family, seed, preset)` triple:
//!
//! - a **clean run** of the preset measures the failure-free geometry
//!   (SpMV/preconditioner application counts, iterations, makespan),
//! - [`FaultSchedule::generate`] draws an adversarial schedule scaled to
//!   that geometry from the taxonomy in [`FaultFamily`],
//! - the **faulty run** replays the preset with strike plans installed in
//!   the space (flip families) or rank deaths scheduled in the runtime and
//!   the LFLR protocol driving recovery (death families),
//! - the result is classified into a [`CaseOutcome`] and checked against
//!   the oracle; any breach surfaces as a [`ContractViolation`] whose
//!   `Display` carries the full `(family, seed, preset)` repro line.
//!
//! Death families run the preset's preconditioned LFLR sibling
//! (`lflr_*`): the recovery protocol is what the campaign is attacking,
//! and its presets are the block-Jacobi preconditioned compositions.
//! Incarnation-pinned flip strikes ride along only where a plan-carrying
//! space exists (kernel presets and the threaded backend); the LFLR
//! presets build their spaces internally, so for death families the
//! delivered payload is the death events themselves.

use resilient_faults::campaign::{FaultFamily, FaultSchedule, ScheduleParams, StrikePlan};
use resilient_linalg::poisson2d;
use resilient_runtime::{
    CommBackend, FailureConfig, FailurePolicy, Result, Runtime, RuntimeConfig,
};

use crate::distributed::{DistCsr, DistVector};
use crate::kernel::{
    lflr_dist_pcg, lflr_dist_pgmres, lflr_pipelined_pcg, lflr_pipelined_pgmres, run_cg, run_gmres,
    BlockJacobi, CgsOrtho, DistSpace, FusedCgStep, GmresFlavor, KernelOutcome, KernelReport,
    KrylovLflrConfig, KrylovSpace, PipelinedCgStep, PipelinedOrtho, PolicyStack,
    PrecondGuardPolicy, RightPrecond,
};
use crate::rbsp::DistSolveOptions;
use crate::solvers::common::{true_relative_residual, StopReason};

/// The kernel composition a campaign case runs: dot-schedule × method ×
/// preconditioning, the preset matrix of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CampaignPreset {
    /// Bulk-synchronous CG (two blocking all-reduces per iteration).
    FusedCg,
    /// Pipelined CG (one nonblocking fused all-reduce).
    PipelinedCg,
    /// Block-Jacobi preconditioned bulk-synchronous CG.
    FusedPcg,
    /// Block-Jacobi preconditioned pipelined CG.
    PipelinedPcg,
    /// Bulk-synchronous GMRES (classical Gram–Schmidt).
    CgsGmres,
    /// p(1)-pipelined GMRES.
    PipelinedGmres,
    /// Right-preconditioned bulk-synchronous GMRES.
    CgsPgmres,
    /// Right-preconditioned p(1)-pipelined GMRES.
    PipelinedPgmres,
}

impl CampaignPreset {
    /// The full preset matrix, in sweep order.
    pub const ALL: [CampaignPreset; 8] = [
        CampaignPreset::FusedCg,
        CampaignPreset::PipelinedCg,
        CampaignPreset::FusedPcg,
        CampaignPreset::PipelinedPcg,
        CampaignPreset::CgsGmres,
        CampaignPreset::PipelinedGmres,
        CampaignPreset::CgsPgmres,
        CampaignPreset::PipelinedPgmres,
    ];

    /// The preconditioned half of the matrix — the presets whose
    /// preconditioner-apply path the `precond-flips` family can strike.
    pub const PRECONDITIONED: [CampaignPreset; 4] = [
        CampaignPreset::FusedPcg,
        CampaignPreset::PipelinedPcg,
        CampaignPreset::CgsPgmres,
        CampaignPreset::PipelinedPgmres,
    ];

    /// Stable short name for reports and repro lines.
    pub fn name(&self) -> &'static str {
        match self {
            CampaignPreset::FusedCg => "fused-cg",
            CampaignPreset::PipelinedCg => "pipelined-cg",
            CampaignPreset::FusedPcg => "fused-pcg",
            CampaignPreset::PipelinedPcg => "pipelined-pcg",
            CampaignPreset::CgsGmres => "cgs-gmres",
            CampaignPreset::PipelinedGmres => "pipelined-gmres",
            CampaignPreset::CgsPgmres => "cgs-pgmres",
            CampaignPreset::PipelinedPgmres => "pipelined-pgmres",
        }
    }

    /// True when the preset applies a preconditioner inside the iteration.
    pub fn is_preconditioned(&self) -> bool {
        matches!(
            self,
            CampaignPreset::FusedPcg
                | CampaignPreset::PipelinedPcg
                | CampaignPreset::CgsPgmres
                | CampaignPreset::PipelinedPgmres
        )
    }

    /// The preconditioned LFLR sibling a death-family case runs (the
    /// recovery presets are all preconditioned; unpreconditioned presets
    /// map to the sibling with the same dot schedule and method).
    fn death_sibling(&self) -> DeathSibling {
        match self {
            CampaignPreset::FusedCg | CampaignPreset::FusedPcg => DeathSibling::FusedPcg,
            CampaignPreset::PipelinedCg | CampaignPreset::PipelinedPcg => {
                DeathSibling::PipelinedPcg
            }
            CampaignPreset::CgsGmres | CampaignPreset::CgsPgmres => DeathSibling::CgsPgmres,
            CampaignPreset::PipelinedGmres | CampaignPreset::PipelinedPgmres => {
                DeathSibling::PipelinedPgmres
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum DeathSibling {
    FusedPcg,
    PipelinedPcg,
    CgsPgmres,
    PipelinedPgmres,
}

/// Geometry and budget of one campaign sweep; `Copy` so SPMD closures can
/// capture it per incarnation.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// World size of every run.
    pub ranks: usize,
    /// Poisson grid edge (`n = nx²` unknowns).
    pub nx: usize,
    /// Solve tolerance.
    pub tol: f64,
    /// Iteration cap (also what an honest `MaxIterations` failure hits).
    pub max_iters: usize,
    /// GMRES restart length.
    pub restart: usize,
    /// Stack a [`PrecondGuardPolicy`] on kernel-preset runs.
    pub guard: bool,
    /// LFLR snapshot cadence (death families).
    pub persist_every: usize,
    /// LFLR snapshot pruning window.
    pub keep_last: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            ranks: 3,
            nx: 8,
            tol: 1e-8,
            max_iters: 400,
            restart: 30,
            guard: false,
            persist_every: 8,
            keep_last: 4,
        }
    }
}

impl CampaignConfig {
    /// Builder: world size.
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks.max(1);
        self
    }

    /// Builder: Poisson grid edge.
    pub fn with_nx(mut self, nx: usize) -> Self {
        self.nx = nx.max(2);
        self
    }

    /// Builder: stack the preconditioner guard on kernel-preset runs.
    pub fn with_guard(mut self, guard: bool) -> Self {
        self.guard = guard;
        self
    }

    /// The solver options every run uses.
    pub fn solve_opts(&self) -> DistSolveOptions {
        DistSolveOptions::default()
            .with_tol(self.tol)
            .with_max_iters(self.max_iters)
            .with_restart(self.restart)
    }

    /// Acceptance bound on the independently verified true relative
    /// residual of a convergence claim (two orders of slack over the
    /// recurrence-based stopping tolerance).
    pub fn accept_tol(&self) -> f64 {
        self.tol * 100.0
    }

    /// The virtual-time budget of a faulty run given the clean makespan —
    /// generous enough for max-iteration stalls and repeated LFLR
    /// recoveries, finite so a runaway schedule is a contract breach
    /// rather than a silent slowdown.
    pub fn budget(&self, clean_makespan: f64) -> f64 {
        5.0 + 50.0 * clean_makespan
    }

    /// The campaign's deterministic right-hand side (`b[i] = 1 + i mod 3`)
    /// for the configured grid — shared by the driver, the diversity
    /// voter's callers and the experiment binary.
    pub fn rhs(&self) -> Vec<f64> {
        let n = self.nx * self.nx;
        let mut b = vec![0.0; n];
        for (i, v) in b.iter_mut().enumerate() {
            *v = 1.0 + (i % 3) as f64;
        }
        b
    }
}

/// How one campaign case ended, as the oracle classifies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The solve claimed convergence and the claim survived the charged
    /// independent true-residual verification.
    ConvergedVerified,
    /// A resilience policy (or the LFLR protocol's own detection path)
    /// stopped the solve with an explicit corruption verdict.
    DetectedByPolicy,
    /// The solve claimed convergence but the independent verification
    /// refuted the claim — silent data corruption made visible by the
    /// harness. Allowed by the oracle, pinned by the regression corpus.
    DetectedByVerification,
    /// The solve stopped without claiming success (iteration cap,
    /// breakdown, divergence): honest, explicit failure.
    HonestFailure(StopReason),
    /// The run returned an explicit error on every rank.
    Errored,
}

impl CaseOutcome {
    /// Stable short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CaseOutcome::ConvergedVerified => "converged-verified",
            CaseOutcome::DetectedByPolicy => "detected-by-policy",
            CaseOutcome::DetectedByVerification => "detected-by-verification",
            CaseOutcome::HonestFailure(_) => "honest-failure",
            CaseOutcome::Errored => "errored",
        }
    }

    /// True for the outcomes in which no wrong answer was presented as
    /// success — which the oracle requires of *every* outcome; the
    /// driver asserts this via classification, so a campaign sweep simply
    /// checks every case classifies at all.
    pub fn is_honest(&self) -> bool {
        true
    }
}

/// Everything one campaign case reports back.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Schedule the case ran.
    pub schedule: FaultSchedule,
    /// Preset the case ran.
    pub preset: CampaignPreset,
    /// Oracle classification (identical on every rank, asserted).
    pub outcome: CaseOutcome,
    /// Independently verified true relative residual of the final iterate.
    pub true_relres: f64,
    /// Iterations of the faulty run (rank 0).
    pub iterations: usize,
    /// LFLR recoveries (death families; 0 otherwise).
    pub recoveries: usize,
    /// Policy detections summed over the stack.
    pub detections: usize,
    /// Bit flips that actually landed.
    pub injections: usize,
    /// Virtual makespan of the faulty run.
    pub makespan: f64,
    /// Virtual makespan of the clean baseline run.
    pub clean_makespan: f64,
}

/// A breach of the campaign oracle, carrying the full repro coordinates.
#[derive(Debug, Clone)]
pub struct ContractViolation {
    /// Preset of the breached case.
    pub preset: CampaignPreset,
    /// Schedule of the breached case (family + seed + events).
    pub schedule: FaultSchedule,
    /// What was breached.
    pub detail: String,
}

impl std::fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "campaign contract violation [family={} seed={} preset={}]: {} (schedule: {:?})",
            self.schedule.family.name(),
            self.schedule.seed,
            self.preset.name(),
            self.detail,
            self.schedule,
        )
    }
}

impl std::error::Error for ContractViolation {}

/// Failure-free geometry a schedule is scaled to and a faulty run is
/// budgeted against.
#[derive(Debug, Clone, Copy)]
pub struct CleanBaseline {
    /// Clean-run virtual makespan.
    pub makespan: f64,
    /// Clean-run iterations.
    pub iterations: usize,
    /// Schedule-generator geometry measured off the clean run.
    pub params: ScheduleParams,
}

/// Per-rank result of one faulty (or clean) solve, produced inside the
/// SPMD closure so classification uses only charged, rank-symmetric data.
#[derive(Debug, Clone, Copy)]
struct RankVerdict {
    outcome: CaseOutcome,
    true_relres: f64,
    iterations: usize,
    recoveries: usize,
    detections: usize,
    injections: usize,
    applications: u64,
    precond_applications: u64,
    local_len: usize,
}

/// Charged post-solve probe of one kernel-preset run.
#[derive(Debug, Clone, Copy)]
pub struct PresetProbe {
    /// Independently verified true relative residual (charged: one extra
    /// operator apply plus two norms, all through the space).
    pub true_relres: f64,
    /// Bit flips that landed in this space.
    pub injections: usize,
    /// SpMV applications the run performed (verification excluded).
    pub applications: u64,
    /// Preconditioner applications the run performed.
    pub precond_applications: u64,
    /// Local vector length on this rank.
    pub local_len: usize,
}

/// Run one kernel preset on an already-distributed system, with optional
/// campaign strike plans and optional [`PrecondGuardPolicy`], and verify
/// the result with a charged true-residual probe. This is the shared
/// engine of the campaign driver, the diversity voter and the
/// threaded-backend campaign tests; it is generic over the communication
/// backend.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_preset<C: CommBackend>(
    comm: &mut C,
    a: &DistCsr,
    b: &DistVector,
    preset: CampaignPreset,
    opts: &DistSolveOptions,
    guard: bool,
    spmv_plan: Option<StrikePlan>,
    precond_plan: Option<StrikePlan>,
) -> Result<(KernelOutcome<DistVector>, KernelReport, PresetProbe)> {
    let mut space = DistSpace::new(comm, a).with_ops(opts.local_ops());
    if let Some(plan) = spmv_plan {
        space = space.with_spmv_plan(plan);
    }
    if let Some(plan) = precond_plan {
        space = space.with_precond_plan(plan);
    }
    let sopts = opts.solve_options();
    let mut guard_policy = PrecondGuardPolicy::new();
    let mut policies = PolicyStack::empty();
    if guard {
        policies.push(&mut guard_policy);
    }
    let mut bj = if preset.is_preconditioned() {
        Some(BlockJacobi::new(a))
    } else {
        None
    };
    let result = match preset {
        CampaignPreset::FusedCg => run_cg(
            &mut space,
            b,
            None,
            &sopts,
            &mut FusedCgStep::new(),
            &mut policies,
        ),
        CampaignPreset::PipelinedCg => run_cg(
            &mut space,
            b,
            None,
            &sopts,
            &mut PipelinedCgStep::new(),
            &mut policies,
        ),
        CampaignPreset::FusedPcg => run_cg(
            &mut space,
            b,
            None,
            &sopts,
            &mut FusedCgStep::preconditioned(bj.as_mut().expect("preconditioned preset")),
            &mut policies,
        ),
        CampaignPreset::PipelinedPcg => run_cg(
            &mut space,
            b,
            None,
            &sopts,
            &mut PipelinedCgStep::preconditioned(bj.as_mut().expect("preconditioned preset")),
            &mut policies,
        ),
        CampaignPreset::CgsGmres => run_gmres(
            &mut space,
            b,
            None,
            &sopts,
            &mut CgsOrtho::new(),
            &mut policies,
            None,
            &GmresFlavor::distributed(),
        ),
        CampaignPreset::PipelinedGmres => run_gmres(
            &mut space,
            b,
            None,
            &sopts,
            &mut PipelinedOrtho::new(),
            &mut policies,
            None,
            &GmresFlavor::distributed(),
        ),
        CampaignPreset::CgsPgmres => {
            let mut right = RightPrecond(bj.as_mut().expect("preconditioned preset"));
            run_gmres(
                &mut space,
                b,
                None,
                &sopts,
                &mut CgsOrtho::new(),
                &mut policies,
                Some(&mut right),
                &GmresFlavor::distributed(),
            )
        }
        CampaignPreset::PipelinedPgmres => {
            let mut right = RightPrecond(bj.as_mut().expect("preconditioned preset"));
            run_gmres(
                &mut space,
                b,
                None,
                &sopts,
                &mut PipelinedOrtho::new(),
                &mut policies,
                Some(&mut right),
                &GmresFlavor::distributed(),
            )
        }
    };
    drop(policies);
    let (outcome, report) = result?;
    // Geometry is read before the verification apply so the probe reports
    // what the *solve* did.
    let applications = space.applications() as u64;
    let precond_applications = space.precond_applications();
    let injections = space.injections();
    let local_len = space.local_len(&outcome.x);
    // Independent charged verification of the final iterate; the space is
    // disarmed first so a strike that never came due cannot corrupt the
    // verdict on the solve.
    space.disarm_plans();
    let ax = space.apply(&outcome.x)?;
    let r = space.residual(b, &ax);
    let rn = space.norm(&r)?;
    let bn = space.norm(b)?;
    let probe = PresetProbe {
        true_relres: rn / bn.max(f64::MIN_POSITIVE),
        injections,
        applications,
        precond_applications,
        local_len,
    };
    Ok((outcome, report, probe))
}

fn classify_kernel(
    outcome: &KernelOutcome<DistVector>,
    report: &KernelReport,
    probe: &PresetProbe,
    accept_tol: f64,
) -> RankVerdict {
    let detections: usize = report.policy_overhead.iter().map(|o| o.detections).sum();
    let case = match outcome.reason {
        StopReason::CorruptionDetected => CaseOutcome::DetectedByPolicy,
        StopReason::Converged => {
            if probe.true_relres.is_finite() && probe.true_relres <= accept_tol {
                CaseOutcome::ConvergedVerified
            } else {
                CaseOutcome::DetectedByVerification
            }
        }
        reason => CaseOutcome::HonestFailure(reason),
    };
    RankVerdict {
        outcome: case,
        true_relres: probe.true_relres,
        iterations: outcome.iterations,
        recoveries: 0,
        detections,
        injections: probe.injections,
        applications: probe.applications,
        precond_applications: probe.precond_applications,
        local_len: probe.local_len,
    }
}

/// Measure the failure-free baseline of `(preset, seed)` under `cfg`:
/// the geometry the schedule generator scales to and the makespan the
/// faulty run is budgeted against. Death-family cases baseline the LFLR
/// sibling (its snapshot-persist traffic is part of the clean makespan).
pub fn clean_baseline(
    family: FaultFamily,
    seed: u64,
    preset: CampaignPreset,
    cfg: &CampaignConfig,
) -> std::result::Result<CleanBaseline, ContractViolation> {
    let cfgc = *cfg;
    let a = poisson2d(cfg.nx, cfg.nx);
    let b_global = cfg.rhs();
    let violation = |detail: String| ContractViolation {
        preset,
        schedule: FaultSchedule {
            family,
            seed,
            spmv: Vec::new(),
            precond: Vec::new(),
            deaths: Vec::new(),
        },
        detail,
    };

    let rt = Runtime::new(RuntimeConfig::fast().with_seed(seed));
    let job = if family.is_death_family() {
        let sibling = preset.death_sibling();
        rt.run(cfg.ranks, move |comm| {
            run_death_rank(comm, &a, &b_global, sibling, &cfgc)
        })
    } else {
        rt.run(cfg.ranks, move |comm| {
            run_flip_rank(comm, &a, &b_global, preset, &cfgc, None, None)
        })
    };
    if !job.all_ok() {
        return Err(violation(format!(
            "clean baseline run errored: {:?}",
            job.errors
        )));
    }
    let makespan = job.job.makespan;
    let verdicts = job.unwrap_all();
    let v0 = verdicts[0];
    if v0.outcome != CaseOutcome::ConvergedVerified {
        return Err(violation(format!(
            "clean baseline did not converge: {:?} (true relres {:.3e})",
            v0.outcome, v0.true_relres
        )));
    }
    let local_len = verdicts.iter().map(|v| v.local_len).min().unwrap_or(1);
    Ok(CleanBaseline {
        makespan,
        iterations: v0.iterations,
        params: ScheduleParams {
            ranks: cfg.ranks,
            max_applications: v0.applications.max(1),
            max_precond_applications: v0.precond_applications,
            local_len: local_len.max(1),
            persist_every: cfg.persist_every,
            clean_iterations: v0.iterations.max(1),
        },
    })
}

fn run_flip_rank(
    comm: &mut resilient_runtime::Comm,
    a: &resilient_linalg::CsrMatrix,
    b_global: &[f64],
    preset: CampaignPreset,
    cfg: &CampaignConfig,
    spmv_plan: Option<&StrikePlan>,
    precond_plan: Option<&StrikePlan>,
) -> Result<RankVerdict> {
    let da = DistCsr::from_global(comm, a)?;
    let b = DistVector::from_global(comm, b_global);
    let opts = cfg.solve_opts();
    let (outcome, report, probe) = run_kernel_preset(
        comm,
        &da,
        &b,
        preset,
        &opts,
        cfg.guard,
        spmv_plan.cloned(),
        precond_plan.cloned(),
    )?;
    Ok(classify_kernel(&outcome, &report, &probe, cfg.accept_tol()))
}

fn run_death_rank(
    comm: &mut resilient_runtime::Comm,
    a: &resilient_linalg::CsrMatrix,
    b_global: &[f64],
    sibling: DeathSibling,
    cfg: &CampaignConfig,
) -> Result<RankVerdict> {
    let opts = cfg.solve_opts();
    let lcfg = KrylovLflrConfig::default()
        .with_persist_every(cfg.persist_every)
        .with_keep_last(cfg.keep_last);
    let (out, rep) = match sibling {
        DeathSibling::FusedPcg => lflr_dist_pcg(comm, a, b_global, &opts, &lcfg)?,
        DeathSibling::PipelinedPcg => lflr_pipelined_pcg(comm, a, b_global, &opts, &lcfg)?,
        DeathSibling::CgsPgmres => lflr_dist_pgmres(comm, a, b_global, &opts, &lcfg)?,
        DeathSibling::PipelinedPgmres => lflr_pipelined_pgmres(comm, a, b_global, &opts, &lcfg)?,
    };
    // Verification: gather the agreed global iterate (deterministic and
    // identical on every rank) and measure its true residual.
    let xg = out.x.gather_global(comm)?;
    let finite = xg.iter().all(|v| v.is_finite());
    let tr = true_relative_residual(a, b_global, &xg);
    let detections: usize = rep.policy.iter().map(|o| o.detections).sum();
    let outcome = if out.converged {
        if finite && tr.is_finite() && tr <= cfg.accept_tol() {
            CaseOutcome::ConvergedVerified
        } else {
            CaseOutcome::DetectedByVerification
        }
    } else {
        CaseOutcome::HonestFailure(StopReason::MaxIterations)
    };
    let n_local = out.x.local_len();
    Ok(RankVerdict {
        outcome,
        true_relres: tr,
        iterations: rep.iterations,
        recoveries: rep.recoveries,
        detections,
        injections: 0,
        applications: (rep.iterations as u64).max(1),
        precond_applications: (rep.iterations as u64).max(1),
        local_len: n_local,
    })
}

/// Run one explicit schedule against `preset` and hold it to the oracle.
/// This is the entry point the greedy minimizer re-invokes while
/// shrinking a failing schedule; [`campaign_case`] composes it with
/// [`clean_baseline`] and [`FaultSchedule::generate`].
pub fn run_schedule(
    schedule: &FaultSchedule,
    preset: CampaignPreset,
    cfg: &CampaignConfig,
    baseline: &CleanBaseline,
) -> std::result::Result<CaseReport, ContractViolation> {
    let cfgc = *cfg;
    let a = poisson2d(cfg.nx, cfg.nx);
    let b_global = cfg.rhs();
    let violation = |detail: String| ContractViolation {
        preset,
        schedule: schedule.clone(),
        detail,
    };

    let job = if schedule.family.is_death_family() {
        let deaths: Vec<(usize, f64)> = schedule
            .deaths
            .iter()
            .map(|d| (d.rank, d.at_frac * baseline.makespan))
            .collect();
        let rt = Runtime::new(
            RuntimeConfig::fast()
                .with_seed(schedule.seed)
                .with_failures(FailureConfig::scheduled(FailurePolicy::ReplaceRank, deaths)),
        );
        let sibling = preset.death_sibling();
        rt.run(cfg.ranks, move |comm| {
            run_death_rank(comm, &a, &b_global, sibling, &cfgc)
        })
    } else {
        let rt = Runtime::new(RuntimeConfig::fast().with_seed(schedule.seed));
        let spmv = schedule.spmv_plan();
        let precond = schedule.precond_plan();
        rt.run(cfg.ranks, move |comm| {
            run_flip_rank(
                comm,
                &a,
                &b_global,
                preset,
                &cfgc,
                Some(&spmv),
                Some(&precond),
            )
        })
    };

    // Oracle clause: bounded virtual time (the stand-in for "never hangs").
    let budget = cfg.budget(baseline.makespan);
    if job.job.makespan > budget {
        return Err(violation(format!(
            "virtual-time budget exceeded: makespan {:.3} > budget {:.3} (clean {:.3})",
            job.job.makespan, budget, baseline.makespan
        )));
    }

    // Oracle clause: every rank classifies, and classifies identically.
    let outcomes: Vec<CaseOutcome> = (0..cfg.ranks)
        .map(|rank| match &job.results[rank] {
            Some(v) => v.outcome,
            None => CaseOutcome::Errored,
        })
        .collect();
    if outcomes.windows(2).any(|w| w[0] != w[1]) {
        return Err(violation(format!("rank-asymmetric outcomes: {outcomes:?}")));
    }

    // Oracle clause: a verified success must actually be one (classification
    // enforces this per rank; re-assert on rank 0's verdict for defence in
    // depth against classification drift).
    let v0 = job.results[0];
    if let Some(v) = &v0 {
        if v.outcome == CaseOutcome::ConvergedVerified
            && !(v.true_relres.is_finite() && v.true_relres <= cfg.accept_tol())
        {
            return Err(violation(format!(
                "verified-success invariant breached: true relres {:.3e}",
                v.true_relres
            )));
        }
    }

    let (outcome, true_relres, iterations, recoveries) = match &v0 {
        Some(v) => (v.outcome, v.true_relres, v.iterations, v.recoveries),
        None => (CaseOutcome::Errored, f64::NAN, 0, 0),
    };
    // Strikes land on whatever rank the schedule names, so the landed-flip
    // and detection tallies must be summed over every rank's verdict — a
    // rank-0-only read would hide most of the campaign's injections.
    let injections: usize = job.results.iter().flatten().map(|v| v.injections).sum();
    let detections: usize = job.results.iter().flatten().map(|v| v.detections).sum();
    Ok(CaseReport {
        schedule: schedule.clone(),
        preset,
        outcome,
        true_relres,
        iterations,
        recoveries,
        detections,
        injections,
        makespan: job.job.makespan,
        clean_makespan: baseline.makespan,
    })
}

/// Run one full campaign case: clean baseline, schedule generation from
/// `(family, seed)`, faulty run, oracle assertion. Returns the classified
/// report, or the [`ContractViolation`] whose `Display` is the repro line.
pub fn campaign_case(
    family: FaultFamily,
    seed: u64,
    preset: CampaignPreset,
    cfg: &CampaignConfig,
) -> std::result::Result<CaseReport, ContractViolation> {
    let baseline = clean_baseline(family, seed, preset, cfg)?;
    let schedule = FaultSchedule::generate(family, seed, &baseline.params);
    run_schedule(&schedule, preset, cfg, &baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matrix_is_complete_and_named() {
        assert_eq!(CampaignPreset::ALL.len(), 8);
        let mut names: Vec<_> = CampaignPreset::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "preset names must be distinct");
        for p in CampaignPreset::PRECONDITIONED {
            assert!(p.is_preconditioned());
        }
    }

    #[test]
    fn clean_baseline_measures_geometry() {
        let cfg = CampaignConfig::default();
        let base = clean_baseline(
            FaultFamily::CorrelatedSpmvFlips,
            7,
            CampaignPreset::FusedCg,
            &cfg,
        )
        .expect("clean baseline");
        assert!(base.iterations > 0);
        assert!(base.makespan > 0.0);
        assert!(base.params.max_applications as usize >= base.iterations);
        assert_eq!(base.params.max_precond_applications, 0, "unpreconditioned");
        let pre = clean_baseline(FaultFamily::PrecondFlips, 7, CampaignPreset::FusedPcg, &cfg)
            .expect("clean baseline");
        assert!(pre.params.max_precond_applications > 0);
    }

    #[test]
    fn fault_free_schedule_yields_verified_convergence_on_every_preset() {
        let cfg = CampaignConfig::default();
        for preset in CampaignPreset::ALL {
            let base = clean_baseline(FaultFamily::MixedFlipStorm, 3, preset, &cfg)
                .unwrap_or_else(|v| panic!("{v}"));
            let empty = FaultSchedule {
                family: FaultFamily::MixedFlipStorm,
                seed: 3,
                spmv: Vec::new(),
                precond: Vec::new(),
                deaths: Vec::new(),
            };
            let report =
                run_schedule(&empty, preset, &cfg, &base).unwrap_or_else(|v| panic!("{v}"));
            assert_eq!(
                report.outcome,
                CaseOutcome::ConvergedVerified,
                "{} must converge fault-free",
                preset.name()
            );
            assert_eq!(report.injections, 0);
        }
    }
}
