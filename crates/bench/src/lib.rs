//! # resilient-bench
//!
//! Experiment harness shared by the `exp_*` binaries and the Criterion
//! benches: plain-text table rendering, CSV emission, and small sweep
//! helpers used by the experiments catalogued in `docs/experiments.md`.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A simple fixed-width table printer for experiment output.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (already formatted as strings).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let mut header_line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(header_line, "{:>width$}  ", h, width = w);
        }
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{:>width$}  ", c, width = w);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render the table as CSV (header row included).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Print the table to stdout and, if `RESILIENCE_CSV_DIR` is set, also
    /// write `<dir>/<slug>.csv`.
    pub fn emit(&self, slug: &str) {
        print!("{}", self.render());
        if let Ok(dir) = std::env::var("RESILIENCE_CSV_DIR") {
            let path = std::path::Path::new(&dir).join(format!("{slug}.csv"));
            if std::fs::create_dir_all(&dir).is_ok() {
                let _ = std::fs::write(path, self.to_csv());
            }
        }
    }
}

/// Format a float compactly for table cells.
pub fn fmt_g(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if !v.is_finite() {
        format!("{v}")
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a ratio as `x.xx×`.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Geometric series of `count` values from `start`, multiplying by `step`.
pub fn geometric_sweep(start: f64, step: f64, count: usize) -> Vec<f64> {
    (0..count).map(|i| start * step.powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_serialises() {
        let mut t = Table::new("demo", &["a", "bee"]);
        assert!(t.is_empty());
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["30".into(), "4.5".into()]);
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(text.contains("=== demo ==="));
        assert!(text.contains("bee"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,bee"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_g(0.0), "0");
        assert_eq!(fmt_g(1.5), "1.5000");
        assert!(fmt_g(1.0e-9).contains('e'));
        assert!(fmt_g(123456.0).contains('e'));
        assert_eq!(fmt_ratio(2.0), "2.00x");
        assert_eq!(fmt_g(f64::INFINITY), "inf");
    }

    #[test]
    fn sweeps() {
        assert_eq!(geometric_sweep(1.0, 10.0, 3), vec![1.0, 10.0, 100.0]);
        assert!(geometric_sweep(1.0, 2.0, 0).is_empty());
    }
}
