//! Distributed vectors and sparse matrices over any [`CommBackend`]
//! (virtual-time simulator or real-threads).
//!
//! Data is distributed by contiguous row blocks
//! ([`BlockDistribution`]). Vector dot
//! products and norms are global collectives (the operations the RBSP
//! experiments target); the sparse matrix-vector product communicates only
//! with the ranks that own referenced columns (neighborhood communication).

use std::collections::BTreeMap;

use resilient_linalg::ops::LocalOps;
use resilient_linalg::{CooMatrix, CsrMatrix, SellMatrix};
use resilient_runtime::{BlockDistribution, CommBackend, Result};

/// Tag space used by the SpMV ghost exchange.
const GHOST_TAG: i32 = 1 << 18;

/// A block-row distributed vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DistVector {
    /// Locally owned entries.
    pub local: Vec<f64>,
    dist: BlockDistribution,
    rank: usize,
}

impl DistVector {
    /// Create this rank's part of a global vector of length `n`, filled by
    /// `f(global_index)`.
    pub fn from_fn<C: CommBackend>(comm: &C, n: usize, f: impl Fn(usize) -> f64) -> Self {
        let dist = BlockDistribution::new(n, comm.size());
        let rank = comm.rank();
        let local = dist.range(rank).map(f).collect();
        Self { local, dist, rank }
    }

    /// This rank's part of a globally replicated slice.
    pub fn from_global<C: CommBackend>(comm: &C, global: &[f64]) -> Self {
        Self::from_fn(comm, global.len(), |i| global[i])
    }

    /// A distributed zero vector of global length `n`.
    pub fn zeros<C: CommBackend>(comm: &C, n: usize) -> Self {
        Self::from_fn(comm, n, |_| 0.0)
    }

    /// Global length.
    pub fn global_len(&self) -> usize {
        self.dist.n
    }

    /// Locally owned length.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// The block distribution.
    pub fn distribution(&self) -> BlockDistribution {
        self.dist
    }

    /// Local partial dot product (no communication).
    pub fn local_dot(&self, other: &DistVector) -> f64 {
        resilient_linalg::vector::dot(&self.local, &other.local)
    }

    /// Global dot product (one allreduce). Charges the `2n` FLOPs of the
    /// local partial product; this is the *only* place vector reductions
    /// charge arithmetic.
    pub fn dot<C: CommBackend>(&self, comm: &mut C, other: &DistVector) -> Result<f64> {
        comm.charge_flops(2 * self.local.len());
        comm.global_dot(self.local_dot(other))
    }

    /// Global 2-norm (one allreduce). A norm is the same `2n` FLOPs as the
    /// dot it delegates to, so it must **not** charge again on top of
    /// [`DistVector::dot`] — pinned by the `norm_costs_exactly_one_dot`
    /// test.
    pub fn norm<C: CommBackend>(&self, comm: &mut C) -> Result<f64> {
        Ok(self.dot(comm, self)?.max(0.0).sqrt())
    }

    /// `self ← self + alpha · other` (local only).
    pub fn axpy(&mut self, alpha: f64, other: &DistVector) {
        resilient_linalg::vector::axpy(alpha, &other.local, &mut self.local);
    }

    /// `self ← alpha · self` (local only).
    pub fn scale(&mut self, alpha: f64) {
        resilient_linalg::vector::scale(alpha, &mut self.local);
    }

    /// Gather the full global vector on every rank (one allgather); intended
    /// for verification and small problems.
    pub fn gather_global<C: CommBackend>(&self, comm: &mut C) -> Result<Vec<f64>> {
        let parts = comm.allgather(&self.local)?;
        Ok(parts.into_iter().flatten().collect())
    }
}

/// A block-row distributed CSR matrix with precomputed ghost-exchange lists.
#[derive(Debug, Clone)]
pub struct DistCsr {
    /// Local rows, with columns renumbered: `0..n_local` are the locally
    /// owned columns (same order as the owned global range), `n_local..`
    /// are ghost columns in the order of `ghost_globals`.
    local: CsrMatrix,
    dist: BlockDistribution,
    n_local: usize,
    /// Global indices of ghost columns, sorted ascending.
    ghost_globals: Vec<usize>,
    /// Ranks this rank exchanges with during SpMV (symmetric list).
    neighbors: Vec<usize>,
    /// For each neighbor (same order as `neighbors`): local indices of owned
    /// entries that must be sent to it.
    send_lists: Vec<Vec<usize>>,
    /// For each neighbor: positions in the ghost array that its data fills.
    recv_lists: Vec<Vec<usize>>,
    /// FLOPs per local SpMV.
    flops: usize,
    /// Optional SELL-C-σ copy of `local`; when present, SpMV runs through
    /// it (bit-identical results, SIMD-friendly layout). The CSR original
    /// is kept: block extraction, ABFT row access and norm bounds read it.
    sell: Option<SellMatrix>,
}

impl DistCsr {
    /// Build the local part of `global` for this rank and negotiate the
    /// ghost-exchange pattern with the other ranks (collective call: every
    /// rank must call it with the same matrix).
    pub fn from_global<C: CommBackend>(comm: &mut C, global: &CsrMatrix) -> Result<Self> {
        let n = global.nrows();
        assert_eq!(global.ncols(), n, "distributed matrices must be square");
        let dist = BlockDistribution::new(n, comm.size());
        let rank = comm.rank();
        let my_range = dist.range(rank);
        let n_local = my_range.len();

        // Collect ghost (externally owned) column indices referenced by my rows.
        let mut ghost_set: BTreeMap<usize, usize> = BTreeMap::new();
        for i in my_range.clone() {
            let (cols, _) = global.row(i);
            for &j in cols {
                if !my_range.contains(&j) {
                    ghost_set.entry(j).or_insert(0);
                }
            }
        }
        let ghost_globals: Vec<usize> = ghost_set.keys().copied().collect();
        for (pos, g) in ghost_globals.iter().enumerate() {
            ghost_set.insert(*g, pos);
        }

        // Build the local matrix with renumbered columns.
        let mut coo = CooMatrix::new(n_local, n_local + ghost_globals.len());
        for (local_i, i) in my_range.clone().enumerate() {
            let (cols, vals) = global.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let local_j = if my_range.contains(&j) {
                    j - my_range.start
                } else {
                    n_local + ghost_set[&j]
                };
                coo.push(local_i, local_j, v);
            }
        }
        let local = coo.to_csr();
        let flops = local.spmv_flops();

        // Tell every rank which global indices we need (allgather of index
        // lists encoded as f64; exact for indices < 2^53).
        let needed_enc: Vec<f64> = ghost_globals.iter().map(|&g| g as f64).collect();
        let all_needs = comm.allgather(&needed_enc)?;

        // Work out, per peer, what I must send and what I will receive.
        let mut neighbors = Vec::new();
        let mut send_lists = Vec::new();
        let mut recv_lists = Vec::new();
        for (peer, peer_needs) in all_needs.iter().enumerate() {
            if peer == rank {
                continue;
            }
            // What peer needs from me:
            let send: Vec<usize> = peer_needs
                .iter()
                .map(|&g| g as usize)
                .filter(|g| my_range.contains(g))
                .map(|g| g - my_range.start)
                .collect();
            // What I need from peer:
            let peer_range = dist.range(peer);
            let recv: Vec<usize> = ghost_globals
                .iter()
                .enumerate()
                .filter(|(_, &g)| peer_range.contains(&g))
                .map(|(pos, _)| pos)
                .collect();
            if !send.is_empty() || !recv.is_empty() {
                neighbors.push(peer);
                send_lists.push(send);
                recv_lists.push(recv);
            }
        }

        Ok(Self {
            local,
            dist,
            n_local,
            ghost_globals,
            neighbors,
            send_lists,
            recv_lists,
            flops,
            sell: None,
        })
    }

    /// Store the local rows in SELL-C-σ as well and run every SpMV through
    /// that layout. Purely local (each rank repacks its own rows); results
    /// are bit-identical to the CSR path, so ranks need not agree on it.
    pub fn with_sell_layout(mut self, sigma: usize) -> Self {
        self.sell = Some(SellMatrix::from_csr(&self.local, sigma));
        self
    }

    /// Name of the active local SpMV layout (`"csr"` or `"sell"`).
    pub fn layout(&self) -> &'static str {
        if self.sell.is_some() {
            "sell"
        } else {
            "csr"
        }
    }

    /// Number of locally owned rows.
    pub fn local_rows(&self) -> usize {
        self.n_local
    }

    /// Global dimension.
    pub fn global_dim(&self) -> usize {
        self.dist.n
    }

    /// Number of ghost entries exchanged per SpMV.
    pub fn ghost_count(&self) -> usize {
        self.ghost_globals.len()
    }

    /// Ranks this rank communicates with during SpMV.
    pub fn neighbors(&self) -> &[usize] {
        &self.neighbors
    }

    /// FLOPs per SpMV application (local part).
    pub fn flops_per_apply(&self) -> usize {
        self.flops
    }

    /// This rank's `n_local × n_local` diagonal block: the locally owned
    /// rows restricted to the locally owned columns (ghost couplings
    /// dropped). This is the sub-operator a block-Jacobi preconditioner
    /// factors — extracting it is purely local, no communication.
    pub fn local_diagonal_block(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.n_local, self.n_local);
        for i in 0..self.local.nrows() {
            let (cols, vals) = self.local.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j < self.n_local {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// This rank's contribution to the global ∞-norm: the maximum absolute
    /// row sum over locally owned rows (rows are complete — owned plus ghost
    /// columns — so an allreduce-Max of this value is the exact global
    /// ∞-norm).
    pub fn local_norm_inf(&self) -> f64 {
        (0..self.local.nrows())
            .map(|i| self.local.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Exchange ghost values of `x` with the neighbours and assemble the
    /// full local input vector (owned entries followed by ghosts) into the
    /// caller's buffer — the hot path reuses one buffer across iterations
    /// instead of allocating per SpMV.
    fn assemble_input_into<C: CommBackend>(
        &self,
        comm: &mut C,
        x: &DistVector,
        full: &mut Vec<f64>,
    ) -> Result<()> {
        full.clear();
        full.reserve(self.n_local + self.ghost_globals.len());
        full.extend_from_slice(&x.local);
        full.resize(self.n_local + self.ghost_globals.len(), 0.0);
        // Post all sends, then receive (tagged by sender to match order).
        let my_rank = comm.rank();
        for (idx, &peer) in self.neighbors.iter().enumerate() {
            let payload: Vec<f64> = self.send_lists[idx].iter().map(|&i| x.local[i]).collect();
            comm.send_f64(peer, GHOST_TAG + my_rank as i32, &payload)?;
        }
        for (idx, &peer) in self.neighbors.iter().enumerate() {
            let (_, data) = comm.recv_f64(peer, GHOST_TAG + peer as i32)?;
            debug_assert_eq!(data.len(), self.recv_lists[idx].len());
            for (&pos, &v) in self.recv_lists[idx].iter().zip(&data) {
                full[self.n_local + pos] = v;
            }
        }
        Ok(())
    }

    /// Distributed SpMV: `y = A·x`, with ghost exchange and virtual-time
    /// accounting for the local arithmetic.
    pub fn apply<C: CommBackend>(&self, comm: &mut C, x: &DistVector) -> Result<DistVector> {
        self.apply_with(comm, x, resilient_linalg::scalar_ops(), &mut Vec::new())
    }

    /// [`DistCsr::apply`] through an explicit [`LocalOps`] backend and a
    /// reusable ghost-assembly buffer (the allocation-free form
    /// [`DistSpace`](crate::kernel::DistSpace) drives every iteration).
    /// Runs the SELL-C-σ layout when one was built
    /// ([`DistCsr::with_sell_layout`]); bit-identical either way.
    pub fn apply_with<C: CommBackend>(
        &self,
        comm: &mut C,
        x: &DistVector,
        ops: &dyn LocalOps,
        scratch: &mut Vec<f64>,
    ) -> Result<DistVector> {
        assert_eq!(
            x.global_len(),
            self.global_dim(),
            "spmv: dimension mismatch"
        );
        self.assemble_input_into(comm, x, scratch)?;
        comm.charge_flops(self.flops);
        let mut y_local = vec![0.0; self.local.nrows()];
        match &self.sell {
            Some(sell) => ops.spmv_sell(sell, scratch, &mut y_local),
            None => ops.spmv_csr(&self.local, scratch, &mut y_local),
        }
        Ok(DistVector {
            local: y_local,
            dist: self.dist,
            rank: comm.rank(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::{poisson1d, poisson2d};
    use resilient_runtime::{Runtime, RuntimeConfig};

    #[test]
    fn dist_vector_dot_and_norm_match_serial() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let n = 37;
        let result = rt.run(4, move |comm| {
            let x = DistVector::from_fn(comm, n, |i| (i + 1) as f64);
            let y = DistVector::from_fn(comm, n, |_| 2.0);
            let d = x.dot(comm, &y)?;
            let nx = x.norm(comm)?;
            Ok((d, nx))
        });
        let serial_dot: f64 = (1..=n).map(|i| 2.0 * i as f64).sum();
        let serial_norm: f64 = ((1..=n).map(|i| (i * i) as f64).sum::<f64>()).sqrt();
        for (d, nx) in result.unwrap_all() {
            assert!((d - serial_dot).abs() < 1e-9);
            assert!((nx - serial_norm).abs() < 1e-9);
        }
    }

    #[test]
    fn dist_vector_axpy_and_gather() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let n = 11;
        let result = rt.run(3, move |comm| {
            let mut x = DistVector::from_fn(comm, n, |i| i as f64);
            let y = DistVector::from_fn(comm, n, |_| 1.0);
            x.axpy(10.0, &y);
            x.scale(0.5);
            x.gather_global(comm)
        });
        for g in result.unwrap_all() {
            let expected: Vec<f64> = (0..n).map(|i| 0.5 * (i as f64 + 10.0)).collect();
            assert_eq!(g, expected);
        }
    }

    #[test]
    fn dist_spmv_matches_serial_poisson1d() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(4, move |comm| {
            let a = poisson1d(23);
            let da = DistCsr::from_global(comm, &a)?;
            let x = DistVector::from_fn(comm, 23, |i| (i as f64 * 0.37).sin());
            let y = da.apply(comm, &x)?;
            Ok((
                y.gather_global(comm)?,
                da.ghost_count(),
                da.neighbors().len(),
            ))
        });
        let a = poisson1d(23);
        let x: Vec<f64> = (0..23).map(|i| (i as f64 * 0.37).sin()).collect();
        let expected = a.spmv(&x);
        for (got, ghosts, neighbors) in result.unwrap_all() {
            for (g, e) in got.iter().zip(&expected) {
                assert!((g - e).abs() < 1e-12);
            }
            // 1-D Laplacian: interior ranks have 2 ghosts / 2 neighbours.
            assert!(ghosts <= 2);
            assert!(neighbors <= 2);
        }
    }

    #[test]
    fn dist_spmv_matches_serial_poisson2d_uneven_ranks() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(5, move |comm| {
            let a = poisson2d(9, 7);
            let n = a.nrows();
            let da = DistCsr::from_global(comm, &a)?;
            let x = DistVector::from_fn(comm, n, |i| 1.0 + (i % 4) as f64);
            let y = da.apply(comm, &x)?;
            y.gather_global(comm)
        });
        let a = poisson2d(9, 7);
        let x: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 4) as f64).collect();
        let expected = a.spmv(&x);
        for got in result.unwrap_all() {
            for (g, e) in got.iter().zip(&expected) {
                assert!((g - e).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn norm_costs_exactly_one_dot() {
        // Audit regression: `norm` must charge the same virtual time as one
        // `dot` (its 2n local FLOPs), never double-charge.
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(2, move |comm| {
            let x = DistVector::from_fn(comm, 16, |i| i as f64);
            let t0 = comm.now();
            let _ = x.dot(comm, &x)?;
            let t1 = comm.now();
            let _ = x.norm(comm)?;
            let t2 = comm.now();
            Ok(((t1 - t0) - (t2 - t1)).abs())
        });
        for delta in result.unwrap_all() {
            assert!(delta < 1e-12, "norm must cost exactly one dot: {delta}");
        }
    }

    #[test]
    fn local_norm_inf_matches_global() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(3, move |comm| {
            let a = poisson2d(6, 5);
            let da = DistCsr::from_global(comm, &a)?;
            comm.allreduce_scalar(resilient_runtime::ReduceOp::Max, da.local_norm_inf())
        });
        let a = poisson2d(6, 5);
        let serial: f64 = (0..a.nrows())
            .map(|i| a.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max);
        for g in result.unwrap_all() {
            assert_eq!(g, serial);
        }
    }

    #[test]
    fn local_diagonal_block_matches_global_submatrix() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(3, move |comm| {
            let a = poisson2d(5, 4);
            let da = DistCsr::from_global(comm, &a)?;
            let block = da.local_diagonal_block();
            let start = resilient_runtime::BlockDistribution::new(a.nrows(), comm.size())
                .range(comm.rank())
                .start;
            Ok((start, block))
        });
        let a = poisson2d(5, 4);
        for (start, block) in result.unwrap_all() {
            assert_eq!(block.nrows(), block.ncols());
            for li in 0..block.nrows() {
                for lj in 0..block.ncols() {
                    let expected = {
                        let (cols, vals) = a.row(start + li);
                        cols.iter()
                            .zip(vals)
                            .find(|(&c, _)| c == start + lj)
                            .map_or(0.0, |(_, &v)| v)
                    };
                    let (cols, vals) = block.row(li);
                    let got = cols
                        .iter()
                        .zip(vals)
                        .find(|(&c, _)| c == lj)
                        .map_or(0.0, |(_, &v)| v);
                    assert_eq!(got, expected, "block[{li}][{lj}]");
                }
            }
        }
    }

    #[test]
    fn single_rank_has_no_neighbors() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let result = rt.run(1, move |comm| {
            let a = poisson2d(5, 5);
            let da = DistCsr::from_global(comm, &a)?;
            Ok((
                da.ghost_count(),
                da.neighbors().len(),
                da.local_rows(),
                da.global_dim(),
            ))
        });
        assert_eq!(result.unwrap_all(), vec![(0, 0, 25, 25)]);
    }
}
