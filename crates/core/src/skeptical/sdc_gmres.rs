//! Skeptical GMRES: GMRES with cheap invariant checks that detect (and
//! optionally recover from) silent data corruption — the algorithm family of
//! §III-A, in the style of Elliott & Hoemmen's bit-flip-resilient GMRES.
//!
//! The checks used, all O(n) or cheaper per iteration:
//!
//! 1. **Finiteness** of every new Krylov vector (catches NaN/Inf-producing
//!    exponent flips immediately).
//! 2. **Norm bound**: for a unit Arnoldi vector `v`, `‖A·v‖ ≤ ‖A‖∞·√n`
//!    (with a safety factor); a high-exponent-bit flip violates this by many
//!    orders of magnitude.
//! 3. **Orthogonality** of the newest basis vector against the previous one
//!    (Gram–Schmidt should make them orthogonal to machine precision).
//! 4. **Residual-consistency** check every `check_interval` iterations: the
//!    recurrence residual estimate is compared against the explicitly
//!    computed true residual; corruption that slipped past the local checks
//!    shows up as a mismatch.
//!
//! On detection the solver either restarts the Arnoldi cycle from the
//! current (still valid) iterate — cheap local recovery — or aborts,
//! according to [`SkepticalResponse`].

use resilient_faults::detection::orthogonality_check;
use resilient_linalg::vector::{has_non_finite, nrm2};

use crate::solvers::common::{
    true_relative_residual, Operator, SolveOptions, SolveOutcome, StopReason,
};
use crate::solvers::gmres::ArnoldiProcess;

/// What to do when a skeptical check fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkepticalResponse {
    /// Record the detection and keep iterating (useful to measure pure
    /// detection coverage).
    RecordOnly,
    /// Discard the current Arnoldi cycle and restart from the current
    /// iterate (local rollback — the recommended response).
    Restart,
    /// Stop the solve with [`StopReason::CorruptionDetected`].
    Abort,
}

/// Configuration of the skeptical checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkepticalConfig {
    /// Enable the per-iteration finiteness / norm-bound / orthogonality
    /// checks.
    pub local_checks: bool,
    /// Recompute the true residual every this many iterations and compare
    /// with the recurrence estimate (0 disables the check).
    pub residual_check_interval: usize,
    /// Allowed overshoot of the true residual relative to the recurrence
    /// estimate: a detection fires when
    /// `true > estimate * (1 + residual_mismatch_tol) + 10·tol`.
    pub residual_mismatch_tol: f64,
    /// Safety factor on the norm bound ‖A·v‖ ≤ factor·‖A‖∞·‖v‖.
    pub norm_bound_factor: f64,
    /// Orthogonality tolerance for the newest basis pair.
    pub orthogonality_tol: f64,
    /// Response on detection.
    pub response: SkepticalResponse,
}

impl Default for SkepticalConfig {
    fn default() -> Self {
        Self {
            local_checks: true,
            residual_check_interval: 10,
            residual_mismatch_tol: 10.0,
            norm_bound_factor: 4.0,
            orthogonality_tol: 1e-8,
            response: SkepticalResponse::Restart,
        }
    }
}

impl SkepticalConfig {
    /// A configuration with every check disabled (the "trusting" baseline).
    pub fn trusting() -> Self {
        Self {
            local_checks: false,
            residual_check_interval: 0,
            ..Self::default()
        }
    }
}

/// What the skeptical machinery observed during a solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkepticalReport {
    /// Number of per-iteration local checks executed.
    pub local_checks_run: usize,
    /// Number of residual-consistency checks executed.
    pub residual_checks_run: usize,
    /// Number of detections (any check).
    pub detections: usize,
    /// Number of Arnoldi-cycle restarts triggered by detections.
    pub corrective_restarts: usize,
    /// Extra floating-point work spent on checks (FLOPs).
    pub check_flops: usize,
}

/// GMRES with skeptical checks. Returns the solver outcome plus the
/// skeptical report.
pub fn skeptical_gmres<O: Operator + ?Sized>(
    a: &O,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
    skeptic: &SkepticalConfig,
) -> (SolveOutcome, SkepticalReport) {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    let mut x = x0.map(|v| v.to_vec()).unwrap_or_else(|| vec![0.0; n]);
    let bn = nrm2(b).max(f64::MIN_POSITIVE);
    let restart = opts.restart.max(1);
    let norm_a = a.norm_estimate();
    let mut history = Vec::new();
    let mut total_iters = 0usize;
    let mut flops = 0usize;
    let mut report = SkepticalReport::default();

    'outer: loop {
        let ax = a.apply(&x);
        flops += a.flops_per_apply();
        let r0: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let mut relres = nrm2(&r0) / bn;
        if history.is_empty() {
            history.push(relres);
        }
        if relres <= opts.tol {
            return (
                SolveOutcome {
                    x,
                    iterations: total_iters,
                    relative_residual: relres,
                    reason: StopReason::Converged,
                    history,
                    flops,
                },
                report,
            );
        }
        if has_non_finite(&x) || !relres.is_finite() {
            return (
                SolveOutcome {
                    x,
                    iterations: total_iters,
                    relative_residual: relres,
                    reason: StopReason::Diverged,
                    history,
                    flops,
                },
                report,
            );
        }

        let mut arnoldi = ArnoldiProcess::new(r0, restart);
        let mut breakdown = false;

        for _inner in 0..restart {
            if total_iters >= opts.max_iters {
                break;
            }
            let v = arnoldi.basis.last().expect("basis never empty").clone();
            let w = a.apply(&v);
            flops += a.flops_per_apply() + 4 * n * (arnoldi.steps() + 1);

            // --- Skeptical local checks on the raw product -----------------
            let mut detected = false;
            if skeptic.local_checks {
                report.local_checks_run += 1;
                report.check_flops += 4 * n;
                let wn = nrm2(&w);
                if has_non_finite(&w)
                    || (norm_a.is_finite()
                        && wn > skeptic.norm_bound_factor * norm_a * nrm2(&v).max(1.0))
                {
                    detected = true;
                }
            }

            let mut res_est = None;
            if !detected {
                res_est = arnoldi.extend(w);
                total_iters += 1;
                relres = arnoldi.residual_norm() / bn;
                history.push(relres);

                if relres <= opts.tol {
                    // Converged according to the recurrence: stop checking.
                    // Once the residual is at rounding level the newest basis
                    // vector is dominated by roundoff and the orthogonality
                    // test would false-positive; the cycle-final *true*
                    // residual check below still guards against a lying
                    // recurrence.
                    break;
                }

                if skeptic.local_checks && arnoldi.basis.len() >= 2 {
                    report.local_checks_run += 1;
                    report.check_flops += 2 * n;
                    let last = arnoldi.basis.len() - 1;
                    if orthogonality_check(
                        &arnoldi.basis[last],
                        &arnoldi.basis[last - 1],
                        skeptic.orthogonality_tol,
                    )
                    .is_suspicious()
                    {
                        detected = true;
                    }
                }

                // --- Periodic residual-consistency check --------------------
                if !detected
                    && skeptic.residual_check_interval > 0
                    && total_iters % skeptic.residual_check_interval == 0
                {
                    report.residual_checks_run += 1;
                    report.check_flops += a.flops_per_apply() + 4 * n;
                    let mut x_trial = x.clone();
                    arnoldi.update_solution(&mut x_trial);
                    let true_rr = true_relative_residual(a, b, &x_trial);
                    flops += a.flops_per_apply();
                    // Corruption makes the recurrence estimate lie *low*: the
                    // Hessenberg data claims progress the true residual does
                    // not show. Flag only a large one-sided discrepancy so
                    // that ordinary rounding noise near the tolerance never
                    // triggers a false positive.
                    let allowed = relres * (1.0 + skeptic.residual_mismatch_tol) + 10.0 * opts.tol;
                    if !true_rr.is_finite() || true_rr > allowed {
                        detected = true;
                    }
                }
            }

            if detected {
                report.detections += 1;
                match skeptic.response {
                    SkepticalResponse::RecordOnly => {
                        // If the product itself was rejected before extending,
                        // we still must extend to make progress.
                        if res_est.is_none() && arnoldi.steps() == 0 {
                            // re-apply cleanly not possible (operator may be
                            // inherently faulty); extend with the possibly
                            // corrupted vector to keep going.
                        }
                    }
                    SkepticalResponse::Restart => {
                        report.corrective_restarts += 1;
                        // Keep whatever progress preceded the corrupted step:
                        // the current cycle is discarded and the outer loop
                        // recomputes the residual from x (which has only been
                        // updated at cycle boundaries, so it is uncorrupted).
                        continue 'outer;
                    }
                    SkepticalResponse::Abort => {
                        arnoldi.update_solution(&mut x);
                        let rr = true_relative_residual(a, b, &x);
                        return (
                            SolveOutcome {
                                x,
                                iterations: total_iters,
                                relative_residual: rr,
                                reason: StopReason::CorruptionDetected,
                                history,
                                flops,
                            },
                            report,
                        );
                    }
                }
            }

            if res_est.is_none() && !detected {
                breakdown = true;
                break;
            }
            if relres <= opts.tol {
                break;
            }
        }

        arnoldi.update_solution(&mut x);
        let true_relres = true_relative_residual(a, b, &x);
        flops += a.flops_per_apply();
        if true_relres <= opts.tol {
            return (
                SolveOutcome {
                    x,
                    iterations: total_iters,
                    relative_residual: true_relres,
                    reason: StopReason::Converged,
                    history,
                    flops,
                },
                report,
            );
        }
        if breakdown || total_iters >= opts.max_iters {
            return (
                SolveOutcome {
                    x,
                    iterations: total_iters,
                    relative_residual: true_relres,
                    reason: if breakdown {
                        StopReason::Breakdown
                    } else {
                        StopReason::MaxIterations
                    },
                    history,
                    flops,
                },
                report,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeptical::faulty::{FaultTarget, FaultyOperator, InjectionPlan};
    use resilient_linalg::poisson2d;

    fn opts() -> SolveOptions {
        SolveOptions::default()
            .with_tol(1e-9)
            .with_max_iters(600)
            .with_restart(30)
    }

    #[test]
    fn clean_run_matches_plain_gmres_and_costs_little_extra() {
        let a = poisson2d(10, 10);
        let b = vec![1.0; a.nrows()];
        let (out, report) = skeptical_gmres(&a, &b, None, &opts(), &SkepticalConfig::default());
        assert!(out.converged());
        assert_eq!(report.detections, 0, "no false positives on a clean run");
        assert!(report.local_checks_run > 0);
        // Check overhead is a small fraction of the solver's arithmetic.
        assert!(
            (report.check_flops as f64) < 0.35 * out.flops as f64,
            "check flops {} vs solver flops {}",
            report.check_flops,
            out.flops
        );
    }

    #[test]
    fn severe_bit_flip_is_detected_and_survived() {
        let a = poisson2d(10, 10);
        let n = a.nrows();
        let b = vec![1.0; n];
        // Flip a high exponent bit in the SpMV output of the 7th application.
        let plan = InjectionPlan {
            at_application: 7,
            target: FaultTarget::Element(n / 2),
            bit: Some(62),
        };
        let faulty = FaultyOperator::new(&a, Some(plan), 3);
        let (out, report) =
            skeptical_gmres(&faulty, &b, None, &opts(), &SkepticalConfig::default());
        assert!(
            faulty.injection().is_some(),
            "the fault must actually have been injected"
        );
        assert!(report.detections >= 1, "the severe flip must be detected");
        assert!(
            out.converged(),
            "the solver must still converge after recovery"
        );
        assert!(
            true_relative_residual(&a, &b, &out.x) < 1e-8,
            "the returned solution must be correct w.r.t. the clean operator"
        );
    }

    #[test]
    fn trusting_solver_is_hurt_by_the_same_flip() {
        let a = poisson2d(10, 10);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plan = InjectionPlan {
            at_application: 7,
            target: FaultTarget::Element(n / 2),
            bit: Some(62),
        };
        let skeptical_faulty = FaultyOperator::new(&a, Some(plan), 3);
        let trusting_faulty = FaultyOperator::new(&a, Some(plan), 3);
        let (skeptical_out, _) = skeptical_gmres(
            &skeptical_faulty,
            &b,
            None,
            &opts(),
            &SkepticalConfig::default(),
        );
        let (trusting_out, trusting_report) = skeptical_gmres(
            &trusting_faulty,
            &b,
            None,
            &opts(),
            &SkepticalConfig::trusting(),
        );
        assert_eq!(trusting_report.detections, 0);
        // The trusting run either needs (strictly) more iterations or ends
        // further from the truth; the skeptical run converges cleanly.
        let skeptical_err = true_relative_residual(&a, &b, &skeptical_out.x);
        let trusting_err = true_relative_residual(&a, &b, &trusting_out.x);
        assert!(skeptical_out.converged());
        assert!(
            trusting_out.iterations > skeptical_out.iterations
                || !trusting_err.is_finite()
                || trusting_err > skeptical_err,
            "trusting: iters={} err={trusting_err}, skeptical: iters={} err={skeptical_err}",
            trusting_out.iterations,
            skeptical_out.iterations,
        );
    }

    #[test]
    fn abort_response_stops_early() {
        let a = poisson2d(8, 8);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plan = InjectionPlan {
            at_application: 3,
            target: FaultTarget::Element(0),
            bit: Some(63),
        };
        let faulty = FaultyOperator::new(&a, Some(plan), 5);
        let cfg = SkepticalConfig {
            response: SkepticalResponse::Abort,
            ..SkepticalConfig::default()
        };
        let (out, report) = skeptical_gmres(&faulty, &b, None, &opts(), &cfg);
        if report.detections > 0 {
            assert_eq!(out.reason, StopReason::CorruptionDetected);
        }
    }

    #[test]
    fn low_mantissa_flip_is_harmless_even_if_undetected() {
        let a = poisson2d(8, 8);
        let n = a.nrows();
        let b = vec![1.0; n];
        let plan = InjectionPlan {
            at_application: 5,
            target: FaultTarget::Element(1),
            bit: Some(0),
        };
        let faulty = FaultyOperator::new(&a, Some(plan), 5);
        let (out, _report) =
            skeptical_gmres(&faulty, &b, None, &opts(), &SkepticalConfig::default());
        assert!(
            out.converged(),
            "a last-mantissa-bit flip must not prevent convergence"
        );
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-8);
    }
}
