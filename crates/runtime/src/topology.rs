//! Cartesian process topologies and block decompositions.
//!
//! Neighborhood collectives (§II-B) and domain-decomposed PDE solvers
//! (§III-C) both need a notion of "my neighbours". This module provides 1-D
//! and 2-D Cartesian topologies with optional periodicity, plus the
//! block-distribution arithmetic used by the distributed vectors and the PDE
//! domains.

use serde::{Deserialize, Serialize};

/// A 1-D or 2-D Cartesian arrangement of ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CartTopology {
    /// Extent in each dimension (1 or 2 entries).
    pub dims: Vec<usize>,
    /// Periodicity per dimension.
    pub periodic: Vec<bool>,
}

impl CartTopology {
    /// A 1-D line (or ring, if `periodic`) of `p` ranks.
    pub fn line(p: usize, periodic: bool) -> Self {
        Self {
            dims: vec![p],
            periodic: vec![periodic],
        }
    }

    /// A 2-D grid of `px` × `py` ranks.
    pub fn grid2d(px: usize, py: usize, periodic: bool) -> Self {
        Self {
            dims: vec![px, py],
            periodic: vec![periodic, periodic],
        }
    }

    /// Choose a near-square 2-D factorization of `p` ranks (like
    /// `MPI_Dims_create`).
    pub fn square_ish(p: usize, periodic: bool) -> Self {
        let mut px = (p as f64).sqrt().floor() as usize;
        while px > 1 && p % px != 0 {
            px -= 1;
        }
        let px = px.max(1);
        Self::grid2d(px, p / px, periodic)
    }

    /// Total number of ranks in the topology.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Number of dimensions (1 or 2).
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Coordinates of `rank` (row-major: the last dimension varies fastest).
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        let mut c = vec![0; self.dims.len()];
        let mut rem = rank;
        for d in (0..self.dims.len()).rev() {
            c[d] = rem % self.dims[d];
            rem /= self.dims[d];
        }
        c
    }

    /// Rank at the given coordinates.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        self.dims
            .iter()
            .zip(coords)
            .fold(0, |r, (&dim, &c)| r * dim + c)
    }

    /// Neighbour of `rank` at displacement `disp` (±1) along dimension `dim`,
    /// or `None` at a non-periodic boundary.
    pub fn shift(&self, rank: usize, dim: usize, disp: isize) -> Option<usize> {
        if dim >= self.dims.len() {
            return None;
        }
        let mut c = self.coords(rank);
        let extent = self.dims[dim] as isize;
        let pos = c[dim] as isize + disp;
        let pos = if self.periodic[dim] {
            ((pos % extent) + extent) % extent
        } else if pos < 0 || pos >= extent {
            return None;
        } else {
            pos
        };
        c[dim] = pos as usize;
        Some(self.rank_of(&c))
    }

    /// All existing nearest neighbours of `rank` (left/right, and up/down in
    /// 2-D), deduplicated and sorted.
    pub fn neighbors(&self, rank: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for dim in 0..self.dims.len() {
            for disp in [-1isize, 1] {
                if let Some(n) = self.shift(rank, dim, disp) {
                    if n != rank {
                        out.push(n);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A contiguous block distribution of `n` items over `p` parts, with the
/// remainder spread over the first `n % p` parts (the standard MPI block
/// distribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockDistribution {
    /// Total number of items.
    pub n: usize,
    /// Number of parts.
    pub p: usize,
}

impl BlockDistribution {
    /// Create a distribution of `n` items over `p` parts.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p > 0, "cannot distribute over zero parts");
        Self { n, p }
    }

    /// Number of items owned by `part`.
    pub fn count(&self, part: usize) -> usize {
        let base = self.n / self.p;
        let rem = self.n % self.p;
        base + usize::from(part < rem)
    }

    /// Global index of the first item owned by `part`.
    pub fn start(&self, part: usize) -> usize {
        let base = self.n / self.p;
        let rem = self.n % self.p;
        part * base + part.min(rem)
    }

    /// Half-open global index range owned by `part`.
    pub fn range(&self, part: usize) -> std::ops::Range<usize> {
        self.start(part)..self.start(part) + self.count(part)
    }

    /// Which part owns global index `i`?
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        // Binary search over the monotone `start` function.
        let (mut lo, mut hi) = (0usize, self.p - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.start(mid) <= i {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }

    /// Convert a global index to a `(part, local_index)` pair.
    pub fn to_local(&self, i: usize) -> (usize, usize) {
        let part = self.owner(i);
        (part, i - self.start(part))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_neighbors_non_periodic() {
        let t = CartTopology::line(4, false);
        assert_eq!(t.size(), 4);
        assert_eq!(t.neighbors(0), vec![1]);
        assert_eq!(t.neighbors(1), vec![0, 2]);
        assert_eq!(t.neighbors(3), vec![2]);
    }

    #[test]
    fn line_neighbors_periodic() {
        let t = CartTopology::line(4, true);
        assert_eq!(t.neighbors(0), vec![1, 3]);
        assert_eq!(t.neighbors(3), vec![0, 2]);
    }

    #[test]
    fn ring_of_two_has_single_neighbor() {
        let t = CartTopology::line(2, true);
        assert_eq!(t.neighbors(0), vec![1]);
    }

    #[test]
    fn grid_coords_roundtrip() {
        let t = CartTopology::grid2d(3, 4, false);
        assert_eq!(t.size(), 12);
        for r in 0..12 {
            assert_eq!(t.rank_of(&t.coords(r)), r);
        }
        assert_eq!(t.coords(0), vec![0, 0]);
        assert_eq!(t.coords(5), vec![1, 1]);
        assert_eq!(t.coords(11), vec![2, 3]);
    }

    #[test]
    fn grid_neighbors_interior_and_corner() {
        let t = CartTopology::grid2d(3, 3, false);
        // centre rank 4 at (1,1)
        assert_eq!(t.neighbors(4), vec![1, 3, 5, 7]);
        // corner rank 0 at (0,0)
        assert_eq!(t.neighbors(0), vec![1, 3]);
    }

    #[test]
    fn shift_periodic_wraps() {
        let t = CartTopology::grid2d(3, 3, true);
        assert_eq!(t.shift(0, 0, -1), Some(6));
        assert_eq!(t.shift(0, 1, -1), Some(2));
        let t = CartTopology::grid2d(3, 3, false);
        assert_eq!(t.shift(0, 0, -1), None);
        assert_eq!(t.shift(0, 5, 1), None, "bad dimension returns None");
    }

    #[test]
    fn square_ish_factorizations() {
        assert_eq!(CartTopology::square_ish(16, false).dims, vec![4, 4]);
        assert_eq!(CartTopology::square_ish(12, false).dims, vec![3, 4]);
        assert_eq!(CartTopology::square_ish(7, false).dims, vec![1, 7]);
        assert_eq!(CartTopology::square_ish(1, false).size(), 1);
    }

    #[test]
    fn block_distribution_counts_sum_to_n() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (5, 8), (100, 13), (0, 4)] {
            let d = BlockDistribution::new(n, p);
            let total: usize = (0..p).map(|i| d.count(i)).sum();
            assert_eq!(total, n, "n={n} p={p}");
            // Ranges are contiguous and non-overlapping.
            let mut next = 0;
            for i in 0..p {
                assert_eq!(d.start(i), next);
                next += d.count(i);
            }
        }
    }

    #[test]
    fn block_distribution_owner_is_consistent() {
        let d = BlockDistribution::new(23, 5);
        for i in 0..23 {
            let o = d.owner(i);
            assert!(d.range(o).contains(&i));
            let (part, local) = d.to_local(i);
            assert_eq!(part, o);
            assert_eq!(d.start(part) + local, i);
        }
    }

    #[test]
    fn block_distribution_remainder_goes_first() {
        let d = BlockDistribution::new(10, 3);
        assert_eq!(d.count(0), 4);
        assert_eq!(d.count(1), 3);
        assert_eq!(d.count(2), 3);
        assert_eq!(d.range(1), 4..7);
    }

    #[test]
    #[should_panic]
    fn zero_parts_panics() {
        BlockDistribution::new(4, 0);
    }
}
