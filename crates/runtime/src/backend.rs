//! The backend boundary: the runtime surface the solver kernels consume.
//!
//! The kernels in `resilience::kernel` (and the distributed vectors/matrices
//! underneath them) need a narrow slice of what a communicator offers:
//! identity, virtual/wall time charging, point-to-point halo exchange,
//! blocking and nonblocking reductions, the persistent per-rank store, and
//! the ULFM-style recovery operations the LFLR protocol drives. This trait
//! names exactly that slice so the kernels can run over *pluggable*
//! execution backends:
//!
//! * [`Comm`] — the deterministic virtual-time simulator (the historical
//!   backend; its inherent methods are untouched, so concrete-`Comm` call
//!   sites keep their bit-identical behaviour).
//! * [`ThreadComm`](crate::threads::ThreadComm) — real worker threads under
//!   wall-clock time with panic-based fault injection (see
//!   [`threads`](crate::threads)).
//!
//! The contract that makes cross-backend comparison meaningful: reductions
//! fold contributions in ascending rank order regardless of arrival order
//! (both backends share [`ReduceOp::reduce_all`] and the rendezvous
//! [`CollectiveEngine`](crate::engine::CollectiveEngine)), so failure-free
//! iterates are bit-identical across backends and across runs.

use crate::collective::ReduceOp;
use crate::comm::Comm;
use crate::error::Result;
use crate::nonblocking::PendingCollective;
use crate::persistent::Stored;
use crate::ulfm::{RecoveryInfo, ShrinkInfo};

/// The execution-backend surface consumed by the distributed kernels.
///
/// Implementations must fold reductions deterministically in ascending rank
/// order (use [`ReduceOp::reduce_all`]) so that solver iterates are
/// bit-reproducible and comparable across backends.
pub trait CommBackend {
    /// Handle to an in-flight nonblocking reduction, redeemed by
    /// [`wait_vector`](Self::wait_vector).
    type Pending;

    // -- identity ------------------------------------------------------

    /// Rank within the current communicator (group rank after a shrink).
    fn rank(&self) -> usize;
    /// Size of the current communicator.
    fn size(&self) -> usize;
    /// Rank within the original (world) job, regardless of shrinks.
    fn world_rank(&self) -> usize;
    /// Size of the original (world) job.
    fn world_size(&self) -> usize;
    /// Incarnation number: 0 for the original process, >0 for replacements.
    fn incarnation(&self) -> u64;
    /// Is this rank a replacement spawned after a failure?
    fn is_replacement(&self) -> bool {
        self.incarnation() > 0
    }
    /// Number of recovery rendezvous / shrinks this rank has completed.
    fn recoveries(&self) -> u64;

    // -- time and failure points --------------------------------------

    /// Current time of this rank in seconds (virtual or wall, backend's
    /// choice of model).
    fn now(&self) -> f64;
    /// Charge `seconds` of local computation.
    fn advance(&mut self, seconds: f64);
    /// Charge the cost of `flops` floating-point operations.
    fn charge_flops(&mut self, flops: usize);
    /// Attribute `flops` to resilience checks (ledger only; no time).
    fn record_check_flops(&mut self, flops: usize);
    /// Explicit failure point: die here if scheduled, then check health.
    fn failure_point(&mut self) -> Result<()>;
    /// Check the health board without being a failure-injection point.
    fn check_health(&self) -> Result<()>;

    // -- point-to-point ------------------------------------------------

    /// Send a slice of `f64` values to `dest` with the given tag.
    fn send_f64(&mut self, dest: usize, tag: i32, data: &[f64]) -> Result<()>;
    /// Receive an `f64` vector; returns `(source_rank, data)`.
    fn recv_f64(&mut self, source: usize, tag: i32) -> Result<(usize, Vec<f64>)>;

    // -- collectives ---------------------------------------------------

    /// Block until every rank of the communicator arrives.
    fn barrier(&mut self) -> Result<()>;
    /// Element-wise reduction of `data` across all ranks.
    fn allreduce(&mut self, op: ReduceOp, data: &[f64]) -> Result<Vec<f64>>;
    /// Scalar reduction across all ranks.
    fn allreduce_scalar(&mut self, op: ReduceOp, value: f64) -> Result<f64> {
        Ok(self.allreduce(op, &[value])?[0])
    }
    /// Sum a local partial across all ranks (the inner-product collective).
    fn global_dot(&mut self, local_partial: f64) -> Result<f64> {
        self.allreduce_scalar(ReduceOp::Sum, local_partial)
    }
    /// Gather every rank's contribution, indexed by rank.
    fn allgather(&mut self, data: &[f64]) -> Result<Vec<Vec<f64>>>;
    /// Start a nonblocking element-wise reduction.
    fn iallreduce(&mut self, op: ReduceOp, data: &[f64]) -> Result<Self::Pending>;
    /// Complete a nonblocking reduction started by
    /// [`iallreduce`](Self::iallreduce).
    fn wait_vector(&mut self, pending: Self::Pending) -> Result<Vec<f64>>;

    // -- persistent store (LFLR) --------------------------------------

    /// Store a value in this rank's persistent partition (survives this
    /// rank's death).
    fn persist(&mut self, key: &str, value: Stored) -> Result<()>;
    /// Read a value from `rank`'s persistent partition.
    fn restore(&mut self, rank: usize, key: &str) -> Result<Stored>;
    /// Remove a key from this rank's persistent partition (no-op if absent).
    fn unpersist(&mut self, key: &str);
    /// Does `rank`'s persistent partition contain `key`?
    fn persisted(&self, rank: usize, key: &str) -> bool;

    // -- recovery ------------------------------------------------------

    /// Participate in the post-failure recovery rendezvous (ReplaceRank
    /// policy); agrees (min) on `proposal` across all world ranks.
    fn recovery_rendezvous(&mut self, proposal: f64) -> Result<RecoveryInfo>;
    /// Rebuild the communicator without the failed ranks (Shrink policy).
    fn shrink(&mut self) -> Result<ShrinkInfo>;
}

/// The virtual-time simulator as a backend: pure delegation to the inherent
/// methods, which always shadow these at concrete-`Comm` call sites — the
/// pre-refactor code paths are therefore bit-identical.
impl CommBackend for Comm {
    type Pending = PendingCollective;

    fn rank(&self) -> usize {
        Comm::rank(self)
    }
    fn size(&self) -> usize {
        Comm::size(self)
    }
    fn world_rank(&self) -> usize {
        Comm::world_rank(self)
    }
    fn world_size(&self) -> usize {
        Comm::world_size(self)
    }
    fn incarnation(&self) -> u64 {
        Comm::incarnation(self)
    }
    fn recoveries(&self) -> u64 {
        self.recoveries
    }

    fn now(&self) -> f64 {
        Comm::now(self)
    }
    fn advance(&mut self, seconds: f64) {
        Comm::advance(self, seconds)
    }
    fn charge_flops(&mut self, flops: usize) {
        Comm::charge_flops(self, flops)
    }
    fn record_check_flops(&mut self, flops: usize) {
        Comm::record_check_flops(self, flops)
    }
    fn failure_point(&mut self) -> Result<()> {
        Comm::failure_point(self)
    }
    fn check_health(&self) -> Result<()> {
        Comm::check_health(self)
    }

    fn send_f64(&mut self, dest: usize, tag: i32, data: &[f64]) -> Result<()> {
        Comm::send_f64(self, dest, tag, data)
    }
    fn recv_f64(&mut self, source: usize, tag: i32) -> Result<(usize, Vec<f64>)> {
        Comm::recv_f64(self, source, tag)
    }

    fn barrier(&mut self) -> Result<()> {
        Comm::barrier(self)
    }
    fn allreduce(&mut self, op: ReduceOp, data: &[f64]) -> Result<Vec<f64>> {
        Comm::allreduce(self, op, data)
    }
    fn allreduce_scalar(&mut self, op: ReduceOp, value: f64) -> Result<f64> {
        Comm::allreduce_scalar(self, op, value)
    }
    fn global_dot(&mut self, local_partial: f64) -> Result<f64> {
        Comm::global_dot(self, local_partial)
    }
    fn allgather(&mut self, data: &[f64]) -> Result<Vec<Vec<f64>>> {
        Comm::allgather(self, data)
    }
    fn iallreduce(&mut self, op: ReduceOp, data: &[f64]) -> Result<PendingCollective> {
        Comm::iallreduce(self, op, data)
    }
    fn wait_vector(&mut self, pending: PendingCollective) -> Result<Vec<f64>> {
        pending.wait_vector(self)
    }

    fn persist(&mut self, key: &str, value: Stored) -> Result<()> {
        Comm::persist(self, key, value)
    }
    fn restore(&mut self, rank: usize, key: &str) -> Result<Stored> {
        Comm::restore(self, rank, key)
    }
    fn unpersist(&mut self, key: &str) {
        Comm::unpersist(self, key)
    }
    fn persisted(&self, rank: usize, key: &str) -> bool {
        Comm::persisted(self, rank, key)
    }

    fn recovery_rendezvous(&mut self, proposal: f64) -> Result<RecoveryInfo> {
        Comm::recovery_rendezvous(self, proposal)
    }
    fn shrink(&mut self) -> Result<ShrinkInfo> {
        Comm::shrink(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::launcher::Runtime;

    /// A generic SPMD body: everything it does goes through the trait.
    fn generic_body<C: CommBackend>(comm: &mut C) -> Result<(f64, f64, u64)> {
        let sum = comm.allreduce_scalar(ReduceOp::Sum, (comm.rank() + 1) as f64)?;
        let pending = comm.iallreduce(ReduceOp::Max, &[comm.rank() as f64])?;
        comm.charge_flops(100);
        let max = comm.wait_vector(pending)?[0];
        comm.persist("k", Stored::Scalar(sum))?;
        let back = comm.restore(comm.rank(), "k")?.into_scalar()?;
        assert_eq!(back, sum);
        comm.unpersist("k");
        assert!(!comm.persisted(comm.rank(), "k"));
        comm.barrier()?;
        Ok((sum, max, comm.recoveries()))
    }

    #[test]
    fn simulator_backend_through_the_trait() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let r = rt.run(4, generic_body);
        for (sum, max, recoveries) in r.unwrap_all() {
            assert_eq!(sum, 10.0);
            assert_eq!(max, 3.0);
            assert_eq!(recoveries, 0);
        }
    }

    #[test]
    fn trait_and_inherent_calls_agree() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let r = rt.run(3, |comm| {
            let inherent = comm.allreduce(ReduceOp::Sum, &[1.0, 2.0])?;
            let via_trait = CommBackend::allreduce(comm, ReduceOp::Sum, &[1.0, 2.0])?;
            Ok(inherent == via_trait)
        });
        assert!(r.unwrap_all().into_iter().all(|same| same));
    }
}
