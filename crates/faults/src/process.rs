//! Fault arrival processes: *when* faults happen.
//!
//! Used both for silent-data-corruption campaigns (events per operation) and
//! for process-failure modelling in the system-cost experiment (E9).

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A stochastic (or deterministic) process deciding when fault events occur.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultProcess {
    /// No faults, ever.
    Never,
    /// A fault occurs independently with probability `p` at every
    /// opportunity (every call to [`FaultClock::strike`]).
    Bernoulli {
        /// Per-opportunity fault probability.
        p: f64,
    },
    /// Faults arrive as a Poisson process with the given rate (events per
    /// unit of "exposure": seconds, FLOPs, iterations — whatever the caller
    /// advances the clock by).
    Poisson {
        /// Events per unit exposure.
        rate: f64,
    },
    /// Weibull inter-arrival times with scale `lambda` and shape `k` — the
    /// distribution commonly fitted to HPC node-failure logs (`k < 1` gives
    /// the infant-mortality behaviour real systems show).
    Weibull {
        /// Scale parameter (characteristic life).
        lambda: f64,
        /// Shape parameter.
        k: f64,
    },
    /// Deterministic: exactly one fault at each listed exposure value.
    At {
        /// Exposure values at which faults occur.
        times: Vec<f64>,
    },
}

impl FaultProcess {
    /// Mean number of events per unit exposure (∞ is never returned; `Never`
    /// gives 0).
    pub fn mean_rate(&self) -> f64 {
        match self {
            FaultProcess::Never => 0.0,
            FaultProcess::Bernoulli { p } => *p,
            FaultProcess::Poisson { rate } => *rate,
            FaultProcess::Weibull { lambda, k } => {
                if *lambda <= 0.0 {
                    0.0
                } else {
                    // 1 / E[T] where E[T] = λ Γ(1 + 1/k); Γ approximated via
                    // Stirling-free lanczos is overkill here — use the exact
                    // value for k = 1 and a simple numeric quadrature
                    // otherwise.
                    1.0 / (lambda * gamma_1p(1.0 / k))
                }
            }
            FaultProcess::At { times } => {
                if times.is_empty() {
                    0.0
                } else {
                    let span = times.iter().cloned().fold(f64::MIN, f64::max).max(1.0);
                    times.len() as f64 / span
                }
            }
        }
    }
}

/// Γ(1 + x) for x in (0, 2], via the Lanczos approximation (sufficient
/// accuracy for rate conversions).
fn gamma_1p(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let z = x; // computing Γ(z + 1) = z Γ(z); use reflection-free region z > 0
    let mut acc = C[0];
    for (i, &c) in C.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + G + 0.5;
    let sqrt_two_pi = (2.0 * std::f64::consts::PI).sqrt();
    sqrt_two_pi * t.powf(z + 0.5) * (-t).exp() * acc
}

/// Stateful sampler that walks a [`FaultProcess`] along an exposure axis and
/// reports how many faults strike in each interval.
#[derive(Debug, Clone)]
pub struct FaultClock {
    process: FaultProcess,
    exposure: f64,
    /// Next pending arrival for renewal-process variants.
    next_arrival: Option<f64>,
    /// Index into the deterministic schedule.
    schedule_pos: usize,
    total_strikes: u64,
}

impl FaultClock {
    /// Create a clock at exposure 0.
    pub fn new(process: FaultProcess, rng: &mut ChaCha8Rng) -> Self {
        let mut clock = Self {
            process,
            exposure: 0.0,
            next_arrival: None,
            schedule_pos: 0,
            total_strikes: 0,
        };
        clock.next_arrival = clock.draw_next(0.0, rng);
        clock
    }

    fn draw_next(&self, from: f64, rng: &mut ChaCha8Rng) -> Option<f64> {
        match &self.process {
            FaultProcess::Poisson { rate } if *rate > 0.0 => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                Some(from - u.ln() / rate)
            }
            FaultProcess::Weibull { lambda, k } if *lambda > 0.0 && *k > 0.0 => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                Some(from + lambda * (-u.ln()).powf(1.0 / k))
            }
            _ => None,
        }
    }

    /// Advance the exposure by `delta` and return the number of faults that
    /// strike during the interval.
    pub fn advance(&mut self, delta: f64, rng: &mut ChaCha8Rng) -> u64 {
        if delta <= 0.0 {
            return 0;
        }
        let end = self.exposure + delta;
        let mut strikes = 0;
        match &self.process {
            FaultProcess::Never => {}
            FaultProcess::Bernoulli { p } => {
                // One opportunity per whole unit of exposure in the interval,
                // at least one opportunity per call.
                let opportunities = delta.ceil().max(1.0) as u64;
                for _ in 0..opportunities {
                    if rng.gen::<f64>() < *p {
                        strikes += 1;
                    }
                }
            }
            FaultProcess::Poisson { .. } | FaultProcess::Weibull { .. } => {
                while let Some(t) = self.next_arrival {
                    if t > end {
                        break;
                    }
                    strikes += 1;
                    self.next_arrival = self.draw_next(t, rng);
                }
            }
            FaultProcess::At { times } => {
                while self.schedule_pos < times.len() && times[self.schedule_pos] <= end {
                    if times[self.schedule_pos] > self.exposure {
                        strikes += 1;
                    }
                    self.schedule_pos += 1;
                }
            }
        }
        self.exposure = end;
        self.total_strikes += strikes;
        strikes
    }

    /// Convenience: does at least one fault strike in the next `delta` of
    /// exposure?
    pub fn strike(&mut self, delta: f64, rng: &mut ChaCha8Rng) -> bool {
        self.advance(delta, rng) > 0
    }

    /// Total exposure consumed so far.
    pub fn exposure(&self) -> f64 {
        self.exposure
    }

    /// Total number of strikes so far.
    pub fn total_strikes(&self) -> u64 {
        self.total_strikes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn never_never_strikes() {
        let mut r = rng(1);
        let mut c = FaultClock::new(FaultProcess::Never, &mut r);
        assert_eq!(c.advance(1e9, &mut r), 0);
        assert_eq!(c.total_strikes(), 0);
        assert_eq!(FaultProcess::Never.mean_rate(), 0.0);
    }

    #[test]
    fn deterministic_schedule_fires_exactly_once_each() {
        let mut r = rng(1);
        let mut c = FaultClock::new(
            FaultProcess::At {
                times: vec![1.0, 2.5, 2.6],
            },
            &mut r,
        );
        assert_eq!(c.advance(0.5, &mut r), 0);
        assert_eq!(c.advance(1.0, &mut r), 1); // covers 1.0
        assert_eq!(c.advance(2.0, &mut r), 2); // covers 2.5, 2.6
        assert_eq!(c.advance(10.0, &mut r), 0);
        assert_eq!(c.total_strikes(), 3);
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut r = rng(42);
        let mut c = FaultClock::new(FaultProcess::Poisson { rate: 0.5 }, &mut r);
        let strikes = c.advance(10_000.0, &mut r);
        let observed_rate = strikes as f64 / 10_000.0;
        assert!(
            (observed_rate - 0.5).abs() < 0.05,
            "observed {observed_rate}"
        );
        assert!((c.exposure() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn bernoulli_probability_is_respected() {
        let mut r = rng(7);
        let mut c = FaultClock::new(FaultProcess::Bernoulli { p: 0.3 }, &mut r);
        let mut strikes = 0u64;
        for _ in 0..10_000 {
            strikes += c.advance(1.0, &mut r);
        }
        let rate = strikes as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn weibull_with_shape_one_matches_exponential_mean() {
        let mut r = rng(3);
        let mut c = FaultClock::new(
            FaultProcess::Weibull {
                lambda: 2.0,
                k: 1.0,
            },
            &mut r,
        );
        let strikes = c.advance(20_000.0, &mut r);
        let observed_rate = strikes as f64 / 20_000.0;
        assert!(
            (observed_rate - 0.5).abs() < 0.05,
            "observed {observed_rate}"
        );
    }

    #[test]
    fn mean_rate_calculations() {
        assert_eq!(FaultProcess::Bernoulli { p: 0.25 }.mean_rate(), 0.25);
        assert_eq!(FaultProcess::Poisson { rate: 3.0 }.mean_rate(), 3.0);
        // Weibull k=1: mean = λ, rate = 1/λ (Γ(2) = 1).
        let rate = FaultProcess::Weibull {
            lambda: 4.0,
            k: 1.0,
        }
        .mean_rate();
        assert!((rate - 0.25).abs() < 1e-6, "got {rate}");
        // Γ(1.5) = √π/2 ≈ 0.8862: rate = 1 / (λ·0.8862).
        let rate = FaultProcess::Weibull {
            lambda: 1.0,
            k: 2.0,
        }
        .mean_rate();
        assert!(
            (rate - 1.0 / 0.886_226_925_452_758).abs() < 1e-4,
            "got {rate}"
        );
        assert_eq!(FaultProcess::At { times: vec![] }.mean_rate(), 0.0);
        assert!(
            FaultProcess::At {
                times: vec![1.0, 2.0]
            }
            .mean_rate()
                > 0.0
        );
    }

    #[test]
    fn zero_or_negative_delta_is_noop() {
        let mut r = rng(1);
        let mut c = FaultClock::new(FaultProcess::Poisson { rate: 100.0 }, &mut r);
        assert_eq!(c.advance(0.0, &mut r), 0);
        assert_eq!(c.advance(-5.0, &mut r), 0);
        assert_eq!(c.exposure(), 0.0);
    }
}
