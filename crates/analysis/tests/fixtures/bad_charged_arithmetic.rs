// analysis-as: crates/core/src/solvers/fixture_uncharged.rs
// Fixture: node-local arithmetic bypassing the charging surface. The
// import, the qualified call, the device-op method call, and the ad-hoc
// backend constructor must each fire `charged-arithmetic`.

use resilient_linalg::vector::{dot, nrm2};

pub fn uncharged(x: &[f64], y: &[f64]) -> f64 {
    let d = resilient_linalg::vector::dot(x, y);
    let ops = scalar_ops();
    d + ops.nrm2(x) + dot(x, y)
}
