//! Shared solver abstractions: linear operators, preconditioners, options
//! and outcomes.

use resilient_linalg::{CsrMatrix, DenseMatrix, SellMatrix};

/// A linear operator `y = A·x` on `R^n`.
///
/// The solvers are generic over this trait so that the same GMRES/CG code
/// runs on a plain sparse matrix, on a fault-injecting wrapper (skeptical
/// programming experiments), or on an operator stored in unreliable memory
/// (selective reliability experiments).
pub trait Operator {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;
    /// Apply the operator: returns `A·x`.
    fn apply(&self, x: &[f64]) -> Vec<f64>;
    /// Floating-point operations per application (used for cost accounting).
    fn flops_per_apply(&self) -> usize {
        2 * self.dim()
    }
    /// An estimate of an upper bound on the operator's ∞-norm, used by
    /// skeptical norm-bound checks. The default derives nothing and returns
    /// infinity (no bound available).
    fn norm_estimate(&self) -> f64 {
        f64::INFINITY
    }
}

impl Operator for CsrMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.spmv(x)
    }
    fn flops_per_apply(&self) -> usize {
        self.spmv_flops()
    }
    fn norm_estimate(&self) -> f64 {
        // ∞-norm = max row sum of absolute values.
        (0..self.nrows())
            .map(|i| self.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

impl Operator for SellMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.spmv(x)
    }
    fn flops_per_apply(&self) -> usize {
        self.spmv_flops()
    }
    fn norm_estimate(&self) -> f64 {
        // Same ∞-norm bound as the CSR impl; row order doesn't matter for
        // a max of row sums, so compute it directly on the sorted layout.
        let mut worst = 0.0f64;
        for (p, &len) in self.lens().iter().enumerate() {
            let base = self.chunk_ptr()[p / resilient_linalg::SELL_C];
            let lane = p % resilient_linalg::SELL_C;
            let sum: f64 = (0..len as usize)
                .map(|step| self.vals()[base + step * resilient_linalg::SELL_C + lane].abs())
                .sum();
            worst = worst.max(sum);
        }
        worst
    }
}

impl Operator for DenseMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.gemv(x)
    }
    fn flops_per_apply(&self) -> usize {
        2 * self.nrows() * self.ncols()
    }
    fn norm_estimate(&self) -> f64 {
        (0..self.nrows())
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

/// A preconditioner `z = M⁻¹·r`.
pub trait Preconditioner {
    /// Apply the preconditioner.
    fn apply(&self, r: &[f64]) -> Vec<f64>;

    /// Allocation-free apply: write `M⁻¹·r` into `out`, reusing its
    /// capacity. The kernel hot loops call this with a buffer that lives
    /// across iterations, so implementations should override the default
    /// (which falls back to the allocating [`Preconditioner::apply`]).
    fn apply_into(&self, r: &[f64], out: &mut Vec<f64>) {
        *out = self.apply(r);
    }
}

/// The identity preconditioner (no preconditioning).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.to_vec()
    }

    fn apply_into(&self, r: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(r);
    }
}

/// Jacobi (diagonal) preconditioner.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Build from a sparse matrix's diagonal. Zero diagonal entries are
    /// treated as one (no scaling) so the preconditioner is always defined.
    pub fn from_matrix(a: &CsrMatrix) -> Self {
        let inv_diag = a
            .diagonal()
            .iter()
            .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        Self { inv_diag }
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.iter().zip(&self.inv_diag).map(|(x, d)| x * d).collect()
    }

    fn apply_into(&self, r: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(r.iter().zip(&self.inv_diag).map(|(x, d)| x * d));
    }
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Relative residual tolerance: stop when ‖r‖ ≤ tol·‖b‖.
    pub tol: f64,
    /// Maximum total iterations.
    pub max_iters: usize,
    /// Restart length for restarted GMRES (ignored by CG).
    pub restart: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            max_iters: 1000,
            restart: 50,
        }
    }
}

impl SolveOptions {
    /// Builder-style tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }
    /// Builder-style iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }
    /// Builder-style restart length.
    pub fn with_restart(mut self, restart: usize) -> Self {
        self.restart = restart;
        self
    }
}

/// Why a solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The residual tolerance was met.
    Converged,
    /// The iteration limit was reached.
    MaxIterations,
    /// A breakdown occurred (zero denominator / happy breakdown handled
    /// separately by GMRES).
    Breakdown,
    /// The iteration produced NaN/Inf values.
    Diverged,
    /// A skeptical check detected corruption and the solver chose to stop.
    CorruptionDetected,
}

/// Result of a linear solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Iterations performed (total, across restarts).
    pub iterations: usize,
    /// Final (true or estimated) relative residual norm ‖b − A·x‖ / ‖b‖.
    pub relative_residual: f64,
    /// Why the solver stopped.
    pub reason: StopReason,
    /// Relative residual after each iteration.
    pub history: Vec<f64>,
    /// Total floating-point operations charged.
    pub flops: usize,
}

impl SolveOutcome {
    /// Did the solve converge to tolerance?
    pub fn converged(&self) -> bool {
        self.reason == StopReason::Converged
    }
}

/// Compute the true relative residual ‖b − A·x‖₂ / ‖b‖₂.
pub fn true_relative_residual<O: Operator + ?Sized>(a: &O, b: &[f64], x: &[f64]) -> f64 {
    let ax = a.apply(x);
    let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    // lint:allow(charged-arithmetic): offline acceptance check run once after
    // the solve, outside any space/ledger — deliberately uncharged.
    let rn = resilient_linalg::vector::nrm2(&r);
    // lint:allow(charged-arithmetic): same offline acceptance check.
    let bn = resilient_linalg::vector::nrm2(b);
    if bn == 0.0 {
        rn
    } else {
        rn / bn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::poisson1d;

    #[test]
    fn csr_operator_impl() {
        let a = poisson1d(4);
        assert_eq!(Operator::dim(&a), 4);
        assert_eq!(a.apply(&[1.0, 0.0, 0.0, 0.0]), vec![2.0, -1.0, 0.0, 0.0]);
        assert_eq!(Operator::flops_per_apply(&a), 2 * a.nnz());
        assert_eq!(a.norm_estimate(), 4.0);
    }

    #[test]
    fn dense_operator_impl() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(Operator::dim(&d), 2);
        assert_eq!(d.apply(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(d.norm_estimate(), 7.0);
    }

    #[test]
    fn jacobi_preconditioner_scales_by_diagonal() {
        let a = poisson1d(3); // diag = 2
        let m = JacobiPreconditioner::from_matrix(&a);
        assert_eq!(m.apply(&[2.0, 4.0, 6.0]), vec![1.0, 2.0, 3.0]);
        let id = IdentityPreconditioner;
        assert_eq!(id.apply(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn apply_into_matches_apply_and_reuses_the_buffer() {
        struct DefaultOnly;
        impl Preconditioner for DefaultOnly {
            fn apply(&self, r: &[f64]) -> Vec<f64> {
                r.iter().map(|x| 2.0 * x).collect()
            }
        }
        let a = poisson1d(3);
        let r = [2.0, 4.0, 6.0];
        // A stale, differently-sized buffer must be fully overwritten.
        let mut buf = vec![9.0; 7];
        JacobiPreconditioner::from_matrix(&a).apply_into(&r, &mut buf);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        IdentityPreconditioner.apply_into(&r, &mut buf);
        assert_eq!(buf, vec![2.0, 4.0, 6.0]);
        // The default implementation falls back to `apply`.
        DefaultOnly.apply_into(&r, &mut buf);
        assert_eq!(buf, vec![4.0, 8.0, 12.0]);
    }

    #[test]
    fn options_builders() {
        let o = SolveOptions::default()
            .with_tol(1e-6)
            .with_max_iters(10)
            .with_restart(5);
        assert_eq!(o.tol, 1e-6);
        assert_eq!(o.max_iters, 10);
        assert_eq!(o.restart, 5);
    }

    #[test]
    fn true_residual_of_exact_solution_is_zero() {
        let a = poisson1d(5);
        let x = vec![1.0, 2.0, 3.0, 2.0, 1.0];
        let b = a.spmv(&x);
        assert!(true_relative_residual(&a, &b, &x) < 1e-15);
        assert!(true_relative_residual(&a, &b, &[0.0; 5]) > 0.9);
    }
}
