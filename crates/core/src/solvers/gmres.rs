//! Restarted GMRES and the Arnoldi process.
//!
//! The solver entry point is a preset of the unified kernel
//! ([`crate::kernel`]): serial space, modified-Gram–Schmidt dot strategy,
//! empty policy stack. [`ArnoldiProcess`] remains available as a standalone
//! building block for experiments that drive the recurrence directly.

// lint:allow(charged-arithmetic): [`ArnoldiProcess`] below is a standalone
// serial building block driven directly by experiments, outside any
// space/ledger; the solver preset itself charges through `SerialSpace`.
use resilient_linalg::vector::{dot, nrm2, scale};
use resilient_linalg::HessenbergLsq;

use crate::kernel::{run_gmres, GmresFlavor, MgsOrtho, PolicyStack, SerialSpace};

use super::common::{Operator, SolveOptions, SolveOutcome};

/// One Arnoldi/GMRES cycle's worth of basis vectors and machinery, exposed so
/// the skeptical and pipelined variants can reuse it.
pub struct ArnoldiProcess {
    /// Orthonormal basis vectors v₀ … v_k.
    pub basis: Vec<Vec<f64>>,
    /// Hessenberg columns (column j has j+2 entries).
    pub h_columns: Vec<Vec<f64>>,
    lsq: HessenbergLsq,
    beta: f64,
}

impl ArnoldiProcess {
    /// Start the process from residual `r0` (must be nonzero).
    pub fn new(r0: Vec<f64>, max_dim: usize) -> Self {
        let beta = nrm2(&r0);
        let mut v0 = r0;
        if beta > 0.0 {
            scale(1.0 / beta, &mut v0);
        }
        Self {
            basis: vec![v0],
            h_columns: Vec::new(),
            lsq: HessenbergLsq::new(max_dim, beta),
            beta,
        }
    }

    /// Initial residual norm β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of completed Arnoldi steps.
    pub fn steps(&self) -> usize {
        self.h_columns.len()
    }

    /// Perform one Arnoldi step using the preconditioned operator
    /// application `w = A·v_k` provided by the caller (the caller computes
    /// it so that fault injection and cost accounting can wrap the product).
    /// Returns the new least-squares residual norm estimate, or `None` on
    /// happy breakdown (the subspace became invariant).
    pub fn extend(&mut self, mut w: Vec<f64>) -> Option<f64> {
        let k = self.steps();
        // Modified Gram–Schmidt orthogonalisation against the existing basis.
        let mut h = Vec::with_capacity(k + 2);
        for v in &self.basis {
            let hij = dot(v, &w);
            for (wi, vi) in w.iter_mut().zip(v) {
                *wi -= hij * vi;
            }
            h.push(hij);
        }
        let h_next = nrm2(&w);
        h.push(h_next);
        let residual = self.lsq_push(&h);
        if h_next <= f64::EPSILON * self.beta.max(1.0) {
            // Happy breakdown: exact solution lives in the current subspace.
            self.h_columns.push(h);
            return None;
        }
        scale(1.0 / h_next, &mut w);
        self.basis.push(w);
        self.h_columns.push(h);
        Some(residual)
    }

    fn lsq_push(&mut self, h: &[f64]) -> f64 {
        self.lsq.push_column(h)
    }

    /// Current least-squares residual norm (absolute, not relative).
    pub fn residual_norm(&self) -> f64 {
        self.lsq.residual_norm()
    }

    /// Assemble the current iterate correction `V_k · y_k` and add it to
    /// `x`.
    pub fn update_solution(&self, x: &mut [f64]) {
        if self.steps() == 0 {
            return;
        }
        let y = self.lsq.solve();
        for (j, yj) in y.iter().enumerate() {
            for (xi, vi) in x.iter_mut().zip(&self.basis[j]) {
                *xi += yj * vi;
            }
        }
    }
}

/// Restarted GMRES(m): solve `A·x = b` with restart length `opts.restart`.
///
/// Preset: unified kernel × [`MgsOrtho`] × empty policy stack over a
/// [`SerialSpace`].
pub fn gmres<O: Operator + ?Sized>(
    a: &O,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> SolveOutcome {
    assert_eq!(b.len(), a.dim(), "rhs dimension mismatch");
    let mut space = SerialSpace::new(a);
    let b = b.to_vec();
    let (outcome, _report) = run_gmres(
        &mut space,
        &b,
        x0.map(|v| v.to_vec()),
        opts,
        &mut MgsOrtho::new(),
        &mut PolicyStack::empty(),
        None,
        &GmresFlavor::serial(),
    )
    .expect("serial spaces are infallible");
    outcome.into_solve_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::common::{true_relative_residual, StopReason};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use resilient_linalg::{diag_dominant_random, poisson1d, poisson2d, random_vector};

    #[test]
    fn solves_spd_poisson() {
        let a = poisson2d(10, 10);
        let b = vec![1.0; a.nrows()];
        let out = gmres(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(500),
        );
        assert!(out.converged(), "{:?}", out.reason);
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-9);
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = diag_dominant_random(60, 5, &mut rng);
        let x_true = random_vector(60, &mut rng);
        let b = a.spmv(&x_true);
        let out = gmres(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-10).with_max_iters(300),
        );
        assert!(out.converged());
        let err: f64 = out
            .x
            .iter()
            .zip(&x_true)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-7, "error {err}");
    }

    #[test]
    fn restart_still_converges() {
        let a = poisson2d(8, 8);
        let b = vec![1.0; a.nrows()];
        let short = SolveOptions::default()
            .with_tol(1e-8)
            .with_restart(5)
            .with_max_iters(2000);
        let long = SolveOptions::default()
            .with_tol(1e-8)
            .with_restart(100)
            .with_max_iters(2000);
        let out_short = gmres(&a, &b, None, &short);
        let out_long = gmres(&a, &b, None, &long);
        assert!(out_short.converged());
        assert!(out_long.converged());
        assert!(
            out_short.iterations >= out_long.iterations,
            "restarting cannot accelerate convergence"
        );
    }

    #[test]
    fn exact_initial_guess_converges_immediately() {
        let a = poisson1d(12);
        let x_true = vec![3.0; 12];
        let b = a.spmv(&x_true);
        let out = gmres(&a, &b, Some(&x_true), &SolveOptions::default());
        assert_eq!(out.iterations, 0);
        assert!(out.converged());
    }

    #[test]
    fn identity_system_one_step() {
        use resilient_linalg::CsrMatrix;
        let a = CsrMatrix::identity(20);
        let b: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let out = gmres(&a, &b, None, &SolveOptions::default().with_tol(1e-12));
        assert!(out.converged());
        assert!(out.iterations <= 1);
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-12);
    }

    #[test]
    fn iteration_cap() {
        let a = poisson2d(12, 12);
        let b = vec![1.0; a.nrows()];
        let out = gmres(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-14).with_max_iters(5),
        );
        assert_eq!(out.reason, StopReason::MaxIterations);
        assert_eq!(out.iterations, 5);
    }

    #[test]
    fn arnoldi_basis_is_orthonormal() {
        let a = poisson2d(6, 6);
        let n = a.nrows();
        let r0: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).sin()).collect();
        let mut arnoldi = ArnoldiProcess::new(r0, 10);
        for _ in 0..10 {
            let v = arnoldi.basis.last().unwrap().clone();
            if arnoldi.extend(a.spmv(&v)).is_none() {
                break;
            }
        }
        for i in 0..arnoldi.basis.len() {
            for j in 0..arnoldi.basis.len() {
                let d = dot(&arnoldi.basis[i], &arnoldi.basis[j]);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-8, "V[{i}]·V[{j}] = {d}");
            }
        }
        // Residual estimate decreases monotonically.
        assert!(arnoldi.residual_norm() <= arnoldi.beta());
    }

    #[test]
    fn arnoldi_residual_matches_true_residual() {
        let a = poisson2d(5, 5);
        let n = a.nrows();
        let b = vec![1.0; n];
        let out = gmres(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-9).with_restart(100),
        );
        // The recurrence-estimated final residual should match the true one.
        let true_res = true_relative_residual(&a, &b, &out.x);
        assert!((true_res - out.relative_residual).abs() < 1e-7);
    }
}
