//! The repo-specific rules: five invariants clippy cannot express, each
//! grounded in a bug class this repository has already hit (see
//! `docs/analysis.md` for the catalogue).
//!
//! Rules are lexical by design. They work on the token stream — brace
//! regions, identifier patterns, comment obligations — which keeps them
//! dependency-free and fast, at the cost of being *approximate*: they
//! lexically over- and under-approximate the semantic invariant, and the
//! per-site waiver comment — `lint:allow`, rule name in parentheses,
//! mandatory reason — is the documented escape hatch for the sanctioned
//! exceptions.

use crate::engine::{Diagnostic, SourceFile};
use crate::lexer::{Tok, TokKind};

/// A single analysis rule.
pub trait Rule {
    /// Kebab-case rule name, as used in waivers and diagnostics.
    fn name(&self) -> &'static str;
    /// One-line description of the invariant.
    fn summary(&self) -> &'static str;
    /// Human description of where the rule applies.
    fn scope(&self) -> &'static str;
    /// Scan `f` and append findings.
    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Every shipped rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(CollectiveSymmetry),
        Box::new(SafetyContract),
        Box::new(VirtualTimePurity),
        Box::new(ChargedArithmetic),
        Box::new(HotLoopAllocation),
    ]
}

/// Code token at code-position `ci` (indices into `f.code`).
fn ct(f: &SourceFile, ci: usize) -> Option<&Tok> {
    f.code.get(ci).map(|&i| &f.toks[i])
}

fn is_ident(f: &SourceFile, ci: usize, text: &str) -> bool {
    ct(f, ci).is_some_and(|t| t.is(TokKind::Ident, text))
}

fn is_punct(f: &SourceFile, ci: usize, text: &str) -> bool {
    ct(f, ci).is_some_and(|t| t.is(TokKind::Punct, text))
}

fn diag(rule: &'static str, f: &SourceFile, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: f.path.clone(),
        line,
        message,
    }
}

// ---------------------------------------------------------------------------
// Rule 1: collective-symmetry
// ---------------------------------------------------------------------------

/// Calls into the collective surface may not appear lexically inside a
/// branch conditioned on rank identity. This is the static face of the
/// desync deadlock fixed dynamically in the collective engine: if one rank
/// skips (or doubles) a collective the others entered, every survivor
/// blocks forever.
pub struct CollectiveSymmetry;

/// The collective surface of `CommBackend` + `KrylovSpace`: every one of
/// these must be executed by all ranks of the communicator, in the same
/// order.
const COLLECTIVES: &[&str] = &[
    "barrier",
    "allreduce",
    "allreduce_scalar",
    "global_dot",
    "allgather",
    "iallreduce",
    "wait_vector",
    "recovery_rendezvous",
    "shrink",
    "fused_dots",
    "start_dots",
    "start_dots_tagged",
    "finish_dots",
    "fused_pairs",
    "persist_vector",
    "persist_scalar",
];

/// Identifiers that mark a condition as rank-identity-dependent.
const RANK_IDENTS: &[&str] = &["my_rank", "world_rank", "rank"];

impl Rule for CollectiveSymmetry {
    fn name(&self) -> &'static str {
        "collective-symmetry"
    }
    fn summary(&self) -> &'static str {
        "collectives may not be reached under a rank-identity branch"
    }
    fn scope(&self) -> &'static str {
        "crates/core/src/** (non-test code)"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !f.path.starts_with("crates/core/src/") {
            return;
        }
        // Stack of brace regions; `true` = lexically under a rank branch.
        let mut regions: Vec<bool> = Vec::new();
        let mut pending: Option<bool> = None;
        let mut else_flag = false;
        let mut ci = 0;
        while let Some(t) = ct(f, ci) {
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "if" | "while" | "match") => {
                    // Scan the condition/scrutinee up to the body-opening
                    // `{` (first `{` at zero paren/bracket depth).
                    let mut depth = 0i32;
                    let mut flag = else_flag;
                    else_flag = false;
                    let mut j = ci + 1;
                    while let Some(tj) = ct(f, j) {
                        match (tj.kind, tj.text.as_str()) {
                            (TokKind::Punct, "(" | "[") => depth += 1,
                            (TokKind::Punct, ")" | "]") => depth -= 1,
                            (TokKind::Punct, "{") if depth <= 0 => break,
                            (TokKind::Punct, ";") if depth <= 0 => break,
                            (TokKind::Ident, id) if RANK_IDENTS.contains(&id) => flag = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    pending = Some(flag);
                }
                (TokKind::Punct, "{") => {
                    let flag = pending.take().unwrap_or(else_flag);
                    else_flag = false;
                    regions.push(flag);
                }
                (TokKind::Punct, "}") => {
                    let was = regions.pop().unwrap_or(false);
                    if was && is_ident(f, ci + 1, "else") {
                        // The other arm of a rank branch is just as
                        // asymmetric: only the complementary ranks run it.
                        else_flag = true;
                    }
                }
                (TokKind::Ident, name)
                    if COLLECTIVES.contains(&name)
                        && is_punct(f, ci + 1, "(")
                        && !is_ident_behind(f, ci, "fn")
                        && regions.iter().any(|&r| r)
                        && !f.in_test(f.code[ci]) =>
                {
                    out.push(diag(
                        self.name(),
                        f,
                        t.line,
                        format!(
                            "collective `{name}` is reached only under a rank-identity \
                             branch; every rank must enter every collective in the same \
                             order or the others deadlock"
                        ),
                    ));
                }
                _ => {}
            }
            ci += 1;
        }
    }
}

/// Is the code token immediately before `ci` the identifier `text`?
fn is_ident_behind(f: &SourceFile, ci: usize, text: &str) -> bool {
    ci > 0 && is_ident(f, ci - 1, text)
}

// ---------------------------------------------------------------------------
// Rule 2: safety-contract
// ---------------------------------------------------------------------------

/// Every `unsafe` site carries a `// SAFETY:` comment, and every
/// `#[target_feature]` function is only called from a file that performs
/// runtime feature detection (`is_x86_feature_detected!`) — the lexical
/// shadow of "the SIMD type is only constructed behind detection".
pub struct SafetyContract;

impl Rule for SafetyContract {
    fn name(&self) -> &'static str {
        "safety-contract"
    }
    fn summary(&self) -> &'static str {
        "unsafe sites need `// SAFETY:`; target_feature fns need a detection-guarded file"
    }
    fn scope(&self) -> &'static str {
        "all analyzed files"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        // Pass A: SAFETY comments on unsafe sites.
        for (ci, &ti) in f.code.iter().enumerate() {
            let t = &f.toks[ti];
            if !t.is(TokKind::Ident, "unsafe") {
                continue;
            }
            let kind = match ct(f, ci + 1) {
                Some(n) if n.is(TokKind::Punct, "{") => "unsafe block",
                Some(n) if n.is(TokKind::Ident, "fn") => "unsafe fn",
                Some(n) if n.is(TokKind::Ident, "impl") => "unsafe impl",
                Some(n) if n.is(TokKind::Ident, "trait") => "unsafe trait",
                _ => "unsafe site",
            };
            if !f.comment_run_above(t.line, |c| c.contains("SAFETY:")) {
                out.push(diag(
                    self.name(),
                    f,
                    t.line,
                    format!(
                        "{kind} without a `// SAFETY:` comment stating why the \
                         operation is sound"
                    ),
                ));
            }
        }
        // Pass B: #[target_feature] fns may only be called (from outside
        // another target_feature fn) in a file that does runtime detection.
        let tf = collect_target_feature_fns(f);
        if tf.is_empty() {
            return;
        }
        let detected = f
            .toks
            .iter()
            .any(|t| t.is(TokKind::Ident, "is_x86_feature_detected"));
        if detected {
            return;
        }
        for (ci, &ti) in f.code.iter().enumerate() {
            let t = &f.toks[ti];
            if t.kind != TokKind::Ident {
                continue;
            }
            let Some(fun) = tf.iter().find(|x| x.name == t.text) else {
                continue;
            };
            if !is_punct(f, ci + 1, "(") || is_ident_behind(f, ci, "fn") {
                continue;
            }
            if tf.iter().any(|x| x.body.contains(&ti)) {
                continue; // call from inside another target_feature fn
            }
            out.push(diag(
                self.name(),
                f,
                t.line,
                format!(
                    "`#[target_feature]` fn `{}` is called in a file with no \
                     `is_x86_feature_detected!` guard — executing it on a CPU \
                     without the feature is undefined behaviour",
                    fun.name
                ),
            ));
        }
    }
}

struct TfFn {
    name: String,
    /// Raw token-index range of the fn body (for call-site exemption).
    body: std::ops::RangeInclusive<usize>,
}

/// Collect `#[target_feature(…)] … fn <name>` declarations with their body
/// token ranges.
fn collect_target_feature_fns(f: &SourceFile) -> Vec<TfFn> {
    let mut found = Vec::new();
    let mut ci = 0;
    while ci < f.code.len() {
        if is_punct(f, ci, "#") && is_punct(f, ci + 1, "[") {
            // Walk the attribute, noting whether it is target_feature.
            let mut depth = 0i32;
            let mut is_tf = false;
            let mut cj = ci + 1;
            while let Some(tj) = ct(f, cj) {
                if tj.is(TokKind::Punct, "[") {
                    depth += 1;
                } else if tj.is(TokKind::Punct, "]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tj.is(TokKind::Ident, "target_feature") {
                    is_tf = true;
                }
                cj += 1;
            }
            if is_tf {
                // Skip further attributes/qualifiers to `fn name`.
                let mut ck = cj + 1;
                while let Some(tk) = ct(f, ck) {
                    if tk.is(TokKind::Ident, "fn") {
                        break;
                    }
                    if tk.is(TokKind::Punct, ";") || tk.is(TokKind::Punct, "}") {
                        ck = f.code.len();
                        break;
                    }
                    ck += 1;
                }
                if let Some(name_tok) = ct(f, ck + 1) {
                    if name_tok.kind == TokKind::Ident {
                        // Find the body braces.
                        let mut cb = ck + 2;
                        while let Some(tb) = ct(f, cb) {
                            if tb.is(TokKind::Punct, "{") {
                                break;
                            }
                            if tb.is(TokKind::Punct, ";") {
                                cb = f.code.len();
                                break;
                            }
                            cb += 1;
                        }
                        if cb < f.code.len() {
                            let mut depth = 0i32;
                            let mut ce = cb;
                            while let Some(te) = ct(f, ce) {
                                if te.is(TokKind::Punct, "{") {
                                    depth += 1;
                                } else if te.is(TokKind::Punct, "}") {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                ce += 1;
                            }
                            if ce < f.code.len() {
                                found.push(TfFn {
                                    name: name_tok.text.clone(),
                                    body: f.code[cb]..=f.code[ce],
                                });
                            }
                        }
                    }
                }
            }
            ci = cj;
        }
        ci += 1;
    }
    found
}

// ---------------------------------------------------------------------------
// Rule 3: virtual-time
// ---------------------------------------------------------------------------

/// `Instant`/`SystemTime` are forbidden outside the real-threads backend
/// (`crates/runtime/src/threads.rs`) and the bench crate: everything else
/// runs on the deterministic virtual clock, and a wall-clock read anywhere
/// in those paths silently destroys reproducibility and the simulator's
/// cost model.
pub struct VirtualTimePurity;

impl Rule for VirtualTimePurity {
    fn name(&self) -> &'static str {
        "virtual-time"
    }
    fn summary(&self) -> &'static str {
        "wall-clock sources only in the threads backend and the bench crate"
    }
    fn scope(&self) -> &'static str {
        "all files except crates/runtime/src/threads.rs and crates/bench/**"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        if f.path == "crates/runtime/src/threads.rs" || f.path.starts_with("crates/bench/") {
            return;
        }
        for &ti in &f.code {
            let t = &f.toks[ti];
            if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
                out.push(diag(
                    self.name(),
                    f,
                    t.line,
                    format!(
                        "wall-clock source `{}` outside the real-threads backend \
                         and bench crate — simulator paths must stay on the \
                         deterministic virtual clock",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: charged-arithmetic
// ---------------------------------------------------------------------------

/// In `crates/core`, node-local arithmetic must flow through the space
/// (`space.ops()` / space methods) so the FLOP and check-flop ledgers stay
/// truthful. Direct `vector::*` level-1/SpMV calls — and ad-hoc backend
/// construction — bypass the charging surface and silently falsify every
/// overhead experiment.
pub struct ChargedArithmetic;

/// The level-1/SpMV functions whose direct use bypasses charging.
const VECTOR_FNS: &[&str] = &[
    "dot",
    "dot_pairs",
    "nrm2",
    "norm_inf",
    "axpy",
    "scale",
    "xpby",
    "waxpby_into",
    "spmv_into",
];

/// `LocalOps` methods distinctive enough to police as method calls
/// (`.dot(`/`.scale(` are also the *charged* `KrylovSpace` surface, so only
/// names unique to the device-op layer are listed).
const LOCALOPS_METHODS: &[&str] = &[
    "dot_pairs",
    "waxpby_into",
    "msub_seq",
    "spmv_csr",
    "spmv_sell",
    "spmv_into",
    "nrm2",
    // Blocked (multi-RHS) kernels: same contract — only the charging
    // boundary may call them raw.
    "spmm_csr",
    "spmm_sell",
    "dot_blocks",
    "axpy_blocks",
    "xpby_blocks",
    "waxpby_blocks",
];

/// Backend constructors: wired through solver/space options only.
const OPS_CTORS: &[&str] = &["scalar_ops", "simd_ops", "auto_ops"];

/// The sanctioned charging boundary: these files *implement* the charged
/// surface and therefore call the raw kernels.
const CHARGING_FILES: &[&str] = &[
    "crates/core/src/kernel/space.rs",
    "crates/core/src/distributed.rs",
];

/// Files additionally allowed to call the backend constructors (the
/// documented selection seam of `DistSolveOptions::local_ops`).
const OPS_CTOR_FILES: &[&str] = &["crates/core/src/rbsp/mod.rs"];

impl Rule for ChargedArithmetic {
    fn name(&self) -> &'static str {
        "charged-arithmetic"
    }
    fn summary(&self) -> &'static str {
        "core arithmetic flows through space.ops()/space methods, never raw vector::*"
    }
    fn scope(&self) -> &'static str {
        "crates/core/src/** minus the charging boundary (kernel/space.rs, distributed.rs)"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !f.path.starts_with("crates/core/src/") {
            return;
        }
        let charging = CHARGING_FILES.contains(&f.path.as_str());
        let ctor_ok = charging || OPS_CTOR_FILES.contains(&f.path.as_str());
        let mut in_use = false;
        let mut use_names_vector = false;
        for (ci, &ti) in f.code.iter().enumerate() {
            let t = &f.toks[ti];
            if f.in_test(ti) {
                continue;
            }
            if t.is(TokKind::Ident, "use") {
                in_use = true;
                use_names_vector = false;
                continue;
            }
            if in_use {
                if t.is(TokKind::Punct, ";") {
                    in_use = false;
                } else if t.is(TokKind::Ident, "vector") {
                    use_names_vector = true;
                } else if !charging
                    && use_names_vector
                    && t.kind == TokKind::Ident
                    && VECTOR_FNS.contains(&t.text.as_str())
                {
                    out.push(diag(
                        self.name(),
                        f,
                        t.line,
                        format!(
                            "importing `vector::{}` invites uncharged arithmetic — \
                             route it through `space.ops()`/space methods so the \
                             FLOP ledger stays truthful",
                            t.text
                        ),
                    ));
                }
                continue;
            }
            if charging {
                continue;
            }
            // Qualified path `vector::f`.
            if t.is(TokKind::Ident, "vector")
                && is_punct(f, ci + 1, ":")
                && is_punct(f, ci + 2, ":")
            {
                if let Some(n) = ct(f, ci + 3) {
                    if n.kind == TokKind::Ident && VECTOR_FNS.contains(&n.text.as_str()) {
                        out.push(diag(
                            self.name(),
                            f,
                            n.line,
                            format!(
                                "direct call `vector::{}` bypasses the charging \
                                 surface — use `space.ops()`/space methods so the \
                                 FLOP ledger stays truthful",
                                n.text
                            ),
                        ));
                    }
                }
            }
            // Method calls unique to the device-op layer.
            if t.is(TokKind::Punct, ".") {
                if let Some(m) = ct(f, ci + 1) {
                    if m.kind == TokKind::Ident
                        && LOCALOPS_METHODS.contains(&m.text.as_str())
                        && is_punct(f, ci + 2, "(")
                    {
                        out.push(diag(
                            self.name(),
                            f,
                            m.line,
                            format!(
                                "`.{}(…)` calls the device-op layer directly — \
                                 node-local arithmetic must go through the space \
                                 so FLOPs are charged",
                                m.text
                            ),
                        ));
                    }
                }
            }
            // Ad-hoc backend construction.
            if !ctor_ok
                && t.kind == TokKind::Ident
                && OPS_CTORS.contains(&t.text.as_str())
                && is_punct(f, ci + 1, "(")
                && !is_ident_behind(f, ci, "fn")
            {
                out.push(diag(
                    self.name(),
                    f,
                    t.line,
                    format!(
                        "`{}()` constructs an op backend at a use site — backends \
                         are selected once through space/solver options",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: hot-loop-alloc
// ---------------------------------------------------------------------------

/// The designated per-iteration modules must not heap-allocate vector
/// buffers (`Vec::new`, `vec![…]`, `.to_vec()`, `.clone()`): the PR 7
/// allocation audit moved every hot-path buffer into reusable scratch, and
/// this rule keeps it that way. Constructor/factory paths (`new`,
/// `with_*`, `from_*`, `persist_*`, `zeros_like`, `residual`) are exempt —
/// they are the sanctioned allocation sites.
pub struct HotLoopAllocation;

/// Modules whose non-setup paths run once per Krylov iteration.
const HOT_FILES: &[&str] = &[
    "crates/core/src/kernel/space.rs",
    "crates/core/src/kernel/precond.rs",
];
const HOT_PREFIXES: &[&str] = &["crates/core/src/rbsp/"];

fn exempt_fn(name: &str) -> bool {
    name == "new"
        || name == "zeros_like"
        || name == "residual"
        || name.starts_with("with_")
        || name.starts_with("from_")
        || name.starts_with("persist_")
}

impl Rule for HotLoopAllocation {
    fn name(&self) -> &'static str {
        "hot-loop-alloc"
    }
    fn summary(&self) -> &'static str {
        "no per-iteration vector-buffer allocation in the designated hot-loop modules"
    }
    fn scope(&self) -> &'static str {
        "kernel/space.rs, kernel/precond.rs, rbsp/* (non-test, non-constructor paths)"
    }

    fn check(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !(HOT_FILES.contains(&f.path.as_str())
            || HOT_PREFIXES.iter().any(|p| f.path.starts_with(p)))
        {
            return;
        }
        // Track the lexically-enclosing fn name per brace region.
        let mut stack: Vec<Option<String>> = Vec::new();
        let mut pending_fn: Option<String> = None;
        for (ci, &ti) in f.code.iter().enumerate() {
            let t = &f.toks[ti];
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "fn") => {
                    if let Some(n) = ct(f, ci + 1) {
                        if n.kind == TokKind::Ident {
                            pending_fn = Some(n.text.clone());
                        }
                    }
                }
                (TokKind::Punct, "{") => {
                    let inherited = stack.last().cloned().flatten();
                    stack.push(pending_fn.take().or(inherited));
                }
                (TokKind::Punct, "}") => {
                    stack.pop();
                }
                _ => {}
            }
            if f.in_test(ti) {
                continue;
            }
            let in_exempt = stack
                .last()
                .and_then(|n| n.as_deref())
                .is_some_and(exempt_fn);
            if in_exempt {
                continue;
            }
            let hit = if t.is(TokKind::Ident, "Vec")
                && is_punct(f, ci + 1, ":")
                && is_punct(f, ci + 2, ":")
                && is_ident(f, ci + 3, "new")
            {
                Some("Vec::new")
            } else if t.is(TokKind::Ident, "vec") && is_punct(f, ci + 1, "!") {
                Some("vec![…]")
            } else if t.is(TokKind::Punct, ".")
                && is_ident(f, ci + 1, "to_vec")
                && is_punct(f, ci + 2, "(")
            {
                Some(".to_vec()")
            } else if t.is(TokKind::Punct, ".")
                && is_ident(f, ci + 1, "clone")
                && is_punct(f, ci + 2, "(")
            {
                Some(".clone()")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(diag(
                    self.name(),
                    f,
                    t.line,
                    format!(
                        "`{what}` allocates in a per-iteration module — reuse a \
                         scratch buffer or move the allocation to a setup path \
                         (PR 7 allocation audit)"
                    ),
                ));
            }
        }
    }
}
