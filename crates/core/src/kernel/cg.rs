//! The unified conjugate-gradient kernel: one solve shell (setup, policy
//! lifecycle, stop handling, outcome assembly) parameterized by a
//! [`CgStrategy`] that owns the recurrence and its reduction schedule.
//!
//! Three strategies reproduce the legacy silos:
//!
//! * [`PcgStep`] — the preconditioned recurrence with immediate dots,
//!   tracking `r·z`, generic over any space (the serial preset's engine);
//! * [`FusedCgStep`] — the bulk-synchronous recurrence with **two blocking
//!   reductions** per iteration (the distributed classic);
//! * [`PipelinedCgStep`] — the Ghysels–Vanroose recurrence with a **single
//!   nonblocking fused reduction** posted before the SpMV and completed
//!   after it.
//!
//! Each strategy optionally holds a [`SpacePreconditioner`] (the kernel's
//! fourth axis). [`FusedCgStep`] and [`PipelinedCgStep`] then run the
//! z-shifted recurrences — the fused variant reduces `r·z` and `r·r`
//! together in its second reduction, the pipelined variant is the
//! preconditioned pipelined CG of Ghysels & Vanroose with `‖r‖²` riding the
//! same single reduction — so preconditioning changes **neither** variant's
//! reductions-per-iteration count, and under [`IdentityPrecond`] both are
//! bit-identical to the unpreconditioned recurrences.
//!
//! [`SpacePreconditioner`]: super::precond::SpacePreconditioner
//! [`IdentityPrecond`]: super::precond::IdentityPrecond
//!
//! Policies hook each SpMV and iteration end, and every recurrence
//! (re)build is reported as a cycle start (`on_cycle_start` with the
//! consistent iterate — the persistence point of rollback policies). CG
//! has no Arnoldi cycle to discard, so on a detection whose response is
//! `Restart` the kernel rebuilds the recurrence from the current iterate
//! (the residual recompute plus whatever the strategy's `init` applies —
//! one extra operator application for the blocking recurrences, two for
//! the pipelined one; a corrupted-but-finite iterate is just a worse
//! initial guess), capped like the GMRES policy-restart backstop; `Abort`
//! stops the solve with `CorruptionDetected`; `RecordOnly` detections are
//! counted and ignored. A `Diverged` outcome consults the stack's
//! `on_failure` hook before terminating — a rollback policy that restores
//! a consistent iterate turns divergence into a recurrence rebuild, capped
//! the same way as in GMRES.
//!
//! The distributed strategies carry policy check dots in the reductions
//! they already post (wants-dots negotiation): [`FusedCgStep`] appends them
//! to its `p·Ap` reduction, [`PipelinedCgStep`] to its single nonblocking
//! fused reduction — so skeptical SDC detection adds **zero** collectives
//! per iteration.

use resilient_runtime::Result;

use super::policy::{
    CheckVectors, DetectionResponse, FailureEvent, PolicyStack, RecoveryAction, SolutionProbe,
    StackOutcome,
};
use super::precond::SpacePreconditioner;
use super::space::KrylovSpace;
use super::{KernelOutcome, KernelReport, SolveProgress};
use crate::solvers::common::{SolveOptions, StopReason};

/// What one CG iteration decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgOutcome {
    /// Iteration completed; keep going.
    Continue,
    /// Tolerance met (the strategy's own convergence point).
    Converged,
    /// `p·Ap ≤ 0` or a non-finite denominator: the recurrence broke down.
    Breakdown,
    /// The iteration produced NaN/Inf values.
    Diverged,
    /// A policy detected corruption and demands the given response
    /// (`Restart` or `Abort`; `RecordOnly` never surfaces here).
    Detected(DetectionResponse),
}

/// A CG iteration engine: owns the recurrence vectors and the reduction
/// schedule of one CG variant.
pub trait CgStrategy<S: KrylovSpace> {
    /// Set up the recurrence from the initial residual `r0 = b − A·x0`.
    fn init(
        &mut self,
        space: &mut S,
        b: &S::Vector,
        r0: S::Vector,
        st: &mut SolveProgress,
    ) -> Result<()>;

    /// Perform one iteration (including its convergence test, iteration
    /// count and history updates, in the variant's legacy order).
    fn step(
        &mut self,
        space: &mut S,
        x: &mut S::Vector,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        b: &S::Vector,
    ) -> Result<CgOutcome>;
}

/// A probe evaluating the true residual of the *current* iterate (CG
/// updates `x` every iteration, so no trial correction is needed).
struct CgProbe<'a, S: KrylovSpace> {
    b: &'a S::Vector,
    x: &'a S::Vector,
    /// ‖b‖ computed once at solve start (floored at `f64::MIN_POSITIVE`).
    bn: f64,
    /// Iteration `x` corresponds to (CG commits every iteration).
    iteration: usize,
}

impl<'a, S: KrylovSpace> SolutionProbe<S> for CgProbe<'a, S> {
    fn local_len(&self, space: &S) -> usize {
        space.local_len(self.x)
    }

    fn iterate(&self) -> &S::Vector {
        self.x
    }

    fn iterate_step(&self) -> usize {
        self.iteration
    }

    fn trial_true_relres(&mut self, space: &mut S) -> Result<f64> {
        let ax = space.apply(self.x)?;
        let r = space.residual(self.b, &ax);
        let rn = space.norm(&r)?;
        Ok(rn / self.bn)
    }
}

/// Run the unified CG kernel.
pub fn run_cg<S: KrylovSpace, T: CgStrategy<S>>(
    space: &mut S,
    b: &S::Vector,
    x0: Option<S::Vector>,
    opts: &SolveOptions,
    strategy: &mut T,
    policies: &mut PolicyStack<'_, S>,
) -> Result<(KernelOutcome<S::Vector>, KernelReport)> {
    let mut x = x0.unwrap_or_else(|| space.zeros_like(b));
    let bn = space.norm(b)?.max(f64::MIN_POSITIVE);
    let mut st = SolveProgress::new(opts.tol, opts.max_iters, bn);
    let mut report = KernelReport::default();
    policies.on_solve_start(space, b)?;

    let ax = space.apply(&x)?;
    let r0 = space.residual(b, &ax);
    strategy.init(space, b, r0, &mut st)?;
    // CG has no Arnoldi cycles; every recurrence (re)build is its cycle
    // boundary, and the iterate is consistent here — the natural
    // persistence point for rollback-style policies.
    policies.on_cycle_start(space, &st.ctx(), &x)?;

    let mut reason = StopReason::MaxIterations;
    if st.relres <= opts.tol {
        reason = StopReason::Converged;
    } else {
        while st.iterations < opts.max_iters {
            match strategy.step(space, &mut x, policies, &mut st, b)? {
                CgOutcome::Continue => {}
                CgOutcome::Converged => {
                    reason = StopReason::Converged;
                    break;
                }
                CgOutcome::Breakdown => {
                    reason = StopReason::Breakdown;
                    break;
                }
                CgOutcome::Diverged => {
                    // Consult the stack before terminating: a rollback
                    // policy may restore a consistent iterate, in which
                    // case the recurrence is rebuilt from it (the GMRES
                    // `recover` path, capped the same way so a policy that
                    // restores forever cannot livelock the kernel).
                    if report.failure_recoveries < opts.max_iters.max(1)
                        && policies.on_failure(&st.ctx(), FailureEvent::Divergence, &mut x)
                            == RecoveryAction::Restart
                    {
                        report.failure_recoveries += 1;
                        let ax = space.apply(&x)?;
                        let r0 = space.residual(b, &ax);
                        strategy.init(space, b, r0, &mut st)?;
                        policies.on_cycle_start(space, &st.ctx(), &x)?;
                        if st.relres <= opts.tol {
                            reason = StopReason::Converged;
                            break;
                        }
                        continue;
                    }
                    reason = StopReason::Diverged;
                    break;
                }
                CgOutcome::Detected(DetectionResponse::Restart) => {
                    report.policy_restarts += 1;
                    if report.policy_restarts > opts.max_iters.max(1) {
                        // A detection firing on every retry would rebuild the
                        // recurrence forever without consuming iterations;
                        // treat persistent corruption as terminal (the GMRES
                        // backstop).
                        reason = StopReason::CorruptionDetected;
                        break;
                    }
                    // CG has no Arnoldi cycle to discard: rebuild the
                    // recurrence from the current iterate instead. A
                    // corrupted-but-finite x is just a worse initial guess;
                    // a non-finite one surfaces as Diverged/Breakdown on the
                    // next step. Like the GMRES cycle-boundary residual,
                    // these rebuild applications run outside the SpMV hooks
                    // (and advance the space's application count), so only
                    // the next iteration's checks guard them.
                    let ax = space.apply(&x)?;
                    let r0 = space.residual(b, &ax);
                    strategy.init(space, b, r0, &mut st)?;
                    policies.on_cycle_start(space, &st.ctx(), &x)?;
                    if st.relres <= opts.tol {
                        reason = StopReason::Converged;
                        break;
                    }
                }
                CgOutcome::Detected(_) => {
                    reason = StopReason::CorruptionDetected;
                    break;
                }
            }
        }
    }

    report.policy_overhead = policies.overhead_report();
    Ok((
        KernelOutcome {
            x,
            iterations: st.iterations,
            relative_residual: st.relres,
            reason,
            history: st.history,
            flops: space.accumulated_flops(),
        },
        report,
    ))
}

// ---------------------------------------------------------------------------
// Preconditioned CG with immediate dots
// ---------------------------------------------------------------------------

/// The preconditioned CG recurrence with immediate (blocking) dots, tracking
/// `r·z` — the MGS analogue of the CG family, now generic over any space.
/// On [`SerialSpace`](super::space::SerialSpace) it matches the legacy
/// `solvers::cg::pcg` operation for operation, including its cost model
/// (`A` + `10n` FLOPs per iteration, charged before the breakdown test, with
/// serial preconditioner applies uncharged via
/// [`SerialPrecond`](super::precond::SerialPrecond)). On distributed spaces
/// each of its three dots is a blocking collective; the fused/pipelined
/// variants below are the latency-tolerant alternatives.
pub struct PcgStep<'m, S: KrylovSpace> {
    m: &'m mut dyn SpacePreconditioner<S>,
    r: Option<S::Vector>,
    z: Option<S::Vector>,
    p: Option<S::Vector>,
    rz: f64,
}

impl<'m, S: KrylovSpace> PcgStep<'m, S> {
    /// Bind the preconditioner.
    pub fn new(m: &'m mut dyn SpacePreconditioner<S>) -> Self {
        Self {
            m,
            r: None,
            z: None,
            p: None,
            rz: 0.0,
        }
    }
}

impl<'m, S: KrylovSpace> CgStrategy<S> for PcgStep<'m, S> {
    fn init(
        &mut self,
        space: &mut S,
        _b: &S::Vector,
        r0: S::Vector,
        st: &mut SolveProgress,
    ) -> Result<()> {
        let mut z = space.zeros_like(&r0);
        self.m.apply_into(space, &r0, &mut z)?;
        self.p = Some(z.clone());
        self.rz = space.dot(&r0, &z)?;
        st.relres = space.norm(&r0)? / st.bn;
        st.history.push(st.relres);
        self.z = Some(z);
        self.r = Some(r0);
        Ok(())
    }

    fn step(
        &mut self,
        space: &mut S,
        x: &mut S::Vector,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        b: &S::Vector,
    ) -> Result<CgOutcome> {
        let p = self.p.as_mut().expect("initialized");
        let r = self.r.as_mut().expect("initialized");
        let n = space.local_len(p);
        match policies.before_spmv(space, &st.ctx(), p)? {
            StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let ap = space.apply(p)?;
        space.charge_flops(10 * n);
        match policies.after_spmv(space, &st.ctx(), p, &ap)? {
            StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let pap = space.dot(p, &ap)?;
        if pap <= 0.0 || !pap.is_finite() {
            return Ok(if pap.is_finite() {
                CgOutcome::Breakdown
            } else {
                CgOutcome::Diverged
            });
        }
        let alpha = self.rz / pap;
        space.axpy(alpha, p, x);
        space.axpy(-alpha, &ap, r);
        st.relres = space.norm(r)? / st.bn;
        st.iterations += 1;
        st.history.push(st.relres);
        // The global norm is non-finite on every rank whenever any rank's
        // local part is, so this divergence decision stays rank-symmetric.
        if !st.relres.is_finite() || space.local_has_non_finite(r) {
            return Ok(CgOutcome::Diverged);
        }
        if st.relres <= st.tol {
            return Ok(CgOutcome::Converged);
        }
        let z = self.z.as_mut().expect("initialized");
        self.m.apply_into(space, r, z)?;
        // No reduction is in flight here (immediate-dot schedule), so a
        // guard policy may post its own blocking collective.
        match policies.after_precond(space, &st.ctx(), r, z)? {
            StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let rz_new = space.dot(r, z)?;
        let beta = rz_new / self.rz;
        self.rz = rz_new;
        space.xpby(z, beta, p);
        let mut probe = CgProbe::<S> {
            b,
            x,
            bn: st.bn,
            iteration: st.iterations,
        };
        match policies.on_iteration(space, &st.ctx(), &mut probe)? {
            StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        Ok(CgOutcome::Continue)
    }
}

// ---------------------------------------------------------------------------
// Bulk-synchronous CG (two blocking reductions per iteration)
// ---------------------------------------------------------------------------

/// The CG recurrence with two blocking global reductions per iteration —
/// the structure whose latency sensitivity §II-B of the paper describes.
/// Unpreconditioned ([`FusedCgStep::new`]) it tracks `r·r` and matches the
/// legacy `rbsp::cg::dist_cg` operation for operation; with a
/// preconditioner ([`FusedCgStep::preconditioned`]) it runs the z-shifted
/// recurrence, fusing `r·z` and `r·r` into the *same* second reduction so
/// preconditioning leaves the two-allreduce-per-iteration schedule intact.
/// Also runs over serial spaces (where the reductions are free).
pub struct FusedCgStep<'m, S: KrylovSpace> {
    m: Option<&'m mut dyn SpacePreconditioner<S>>,
    r: Option<S::Vector>,
    z: Option<S::Vector>,
    p: Option<S::Vector>,
    /// `r·z` (identical to `r·r` unpreconditioned) — drives α and β.
    rz: f64,
    /// `r·r` — drives the convergence test.
    rr: f64,
}

impl<'m, S: KrylovSpace> FusedCgStep<'m, S> {
    /// The unpreconditioned recurrence.
    pub fn new() -> Self {
        Self {
            m: None,
            r: None,
            z: None,
            p: None,
            rz: 0.0,
            rr: 0.0,
        }
    }

    /// The z-shifted (preconditioned) recurrence.
    pub fn preconditioned(m: &'m mut dyn SpacePreconditioner<S>) -> Self {
        Self {
            m: Some(m),
            ..Self::new()
        }
    }
}

impl<'m, S: KrylovSpace> Default for FusedCgStep<'m, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'m, S: KrylovSpace> CgStrategy<S> for FusedCgStep<'m, S> {
    fn init(
        &mut self,
        space: &mut S,
        _b: &S::Vector,
        r0: S::Vector,
        st: &mut SolveProgress,
    ) -> Result<()> {
        match self.m.as_mut() {
            None => {
                self.rr = space.dot(&r0, &r0)?;
                self.rz = self.rr;
                self.p = Some(r0.clone());
            }
            Some(m) => {
                let mut z = space.zeros_like(&r0);
                m.apply_into(space, &r0, &mut z)?;
                // One fused reduction for r·z and r·r: preconditioned init
                // posts the same single collective as the legacy init.
                let vals = space.fused_pairs(&[(&r0, &z), (&r0, &r0)], 0)?;
                self.rz = vals[0];
                self.rr = vals[1];
                self.p = Some(z.clone());
                self.z = Some(z);
            }
        }
        self.r = Some(r0);
        st.relres = self.rr.sqrt() / st.bn;
        st.history.push(st.relres);
        Ok(())
    }

    fn step(
        &mut self,
        space: &mut S,
        x: &mut S::Vector,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        b: &S::Vector,
    ) -> Result<CgOutcome> {
        // Convergence is evaluated at the top of the loop (from the previous
        // iteration's reduction), as in the legacy distributed solver.
        st.relres = self.rr.sqrt() / st.bn;
        if st.relres <= st.tol {
            return Ok(CgOutcome::Converged);
        }
        space.advance_extra_work()?;
        let p = self.p.as_mut().expect("initialized");
        let r = self.r.as_mut().expect("initialized");
        match policies.before_spmv(space, &st.ctx(), p)? {
            StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let ap = space.apply(p)?;
        // Blocking reduction #1, carrying any policy check dots (wants-dots
        // negotiation). When checks are fused the after-SpMV hook runs
        // after it so the policies decide from already-global scalars; with
        // no requests the legacy hook-first order is kept, so a detection
        // still skips the reduction.
        let pap = {
            let avail = CheckVectors {
                spmv_input: Some(&*p),
                spmv_product: Some(&ap),
                basis_pair: None,
            };
            let mut check_pairs: Vec<(&S::Vector, &S::Vector)> = Vec::new();
            let batch = policies.collect_check_dots(space, &st.ctx(), &avail, &mut check_pairs);
            if batch.is_empty() {
                // Legacy path, order and cost model untouched.
                match policies.after_spmv(space, &st.ctx(), p, &ap)? {
                    StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
                    StackOutcome::Recorded | StackOutcome::Continue => {}
                }
                space.dot(p, &ap)?
            } else {
                let mut pairs: Vec<(&S::Vector, &S::Vector)> = vec![(&*p, &ap)];
                pairs.append(&mut check_pairs);
                let all = space.fused_pairs(&pairs, batch.len())?;
                drop(pairs);
                policies.consume_check_dots(&st.ctx(), &batch, &all[1..]);
                match policies.after_spmv(space, &st.ctx(), p, &ap)? {
                    StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
                    StackOutcome::Recorded | StackOutcome::Continue => {}
                }
                all[0]
            }
        };
        if pap <= 0.0 || !pap.is_finite() {
            return Ok(CgOutcome::Breakdown);
        }
        let alpha = self.rz / pap;
        space.axpy(alpha, p, x);
        space.axpy(-alpha, &ap, r);
        space.charge_flops(4 * space.local_len(r));
        // Blocking reduction #2: `r·r` alone unpreconditioned; `r·z` fused
        // with `r·r` in the same collective when a preconditioner is bound.
        let (rz_new, rr_new) = match self.m.as_mut() {
            None => {
                let rr = space.dot(r, r)?;
                (rr, rr)
            }
            Some(m) => {
                let z = self.z.as_mut().expect("preconditioned state");
                m.apply_into(space, r, z)?;
                // Between the two blocking reductions: nothing in flight,
                // so a guard policy may post its own collective. A Restart
                // detection returns before β/p are updated — the rebuilt
                // recurrence recomputes z from the committed iterate.
                match policies.after_precond(space, &st.ctx(), r, z)? {
                    StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
                    StackOutcome::Recorded | StackOutcome::Continue => {}
                }
                let vals = space.fused_pairs(&[(&*r, &*z), (&*r, &*r)], 0)?;
                (vals[0], vals[1])
            }
        };
        let beta = rz_new / self.rz;
        self.rz = rz_new;
        self.rr = rr_new;
        if self.m.is_some() {
            let z = self.z.as_ref().expect("preconditioned state");
            space.xpby(z, beta, p);
        } else {
            space.xpby(r, beta, p);
        }
        space.charge_flops(2 * space.local_len(p));
        st.iterations += 1;
        st.relres = self.rr.sqrt() / st.bn;
        st.history.push(st.relres);
        let mut probe = CgProbe::<S> {
            b,
            x,
            bn: st.bn,
            iteration: st.iterations,
        };
        match policies.on_iteration(space, &st.ctx(), &mut probe)? {
            StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        Ok(CgOutcome::Continue)
    }
}

// ---------------------------------------------------------------------------
// Pipelined CG (one nonblocking fused reduction per iteration)
// ---------------------------------------------------------------------------

/// Pipelined CG (Ghysels & Vanroose): algebraically equivalent to CG but
/// with a single nonblocking fused reduction per iteration, posted before
/// the SpMV and completed after it, so the reduction's latency hides behind
/// the matrix-vector product. Unpreconditioned it matches the legacy
/// `rbsp::cg::pipelined_cg`; with a preconditioner it is the preconditioned
/// pipelined CG of the same paper — the recurrence additionally maintains
/// `u = M⁻¹r` and `q = M⁻¹s`, the preconditioner apply joins the SpMV in
/// the overlap region, and `‖r‖²` rides the same single reduction (as a
/// third pair) so the one-allreduce-per-iteration schedule is unchanged.
pub struct PipelinedCgStep<'m, S: KrylovSpace> {
    m: Option<&'m mut dyn SpacePreconditioner<S>>,
    r: Option<S::Vector>,
    /// `u = M⁻¹·r` (preconditioned only).
    u: Option<S::Vector>,
    /// `w = A·u` (unpreconditioned: `A·r`).
    w: Option<S::Vector>,
    /// Buffer for `M⁻¹·w`, the overlap-region preconditioner apply.
    mw: Option<S::Vector>,
    /// Tracks the operator image of the search-direction chain (`A·q` /
    /// `A·s`-shifted quantity of the recurrence).
    z: Option<S::Vector>,
    /// `q = M⁻¹·s` (preconditioned only).
    q: Option<S::Vector>,
    /// Tracks `A·p`.
    s: Option<S::Vector>,
    p: Option<S::Vector>,
    gamma_old: f64,
    alpha_old: f64,
    /// True until the first step after (re-)initialization: the recurrence
    /// must take the iteration-0 branch (β = 0) again after a policy
    /// restart rebuilt it from the current iterate.
    fresh: bool,
}

impl<'m, S: KrylovSpace> PipelinedCgStep<'m, S> {
    /// The unpreconditioned recurrence.
    pub fn new() -> Self {
        Self {
            m: None,
            r: None,
            u: None,
            w: None,
            mw: None,
            z: None,
            q: None,
            s: None,
            p: None,
            gamma_old: 0.0,
            alpha_old: 0.0,
            fresh: true,
        }
    }

    /// The preconditioned pipelined recurrence.
    pub fn preconditioned(m: &'m mut dyn SpacePreconditioner<S>) -> Self {
        Self {
            m: Some(m),
            ..Self::new()
        }
    }
}

impl<'m, S: KrylovSpace> Default for PipelinedCgStep<'m, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'m, S: KrylovSpace> CgStrategy<S> for PipelinedCgStep<'m, S> {
    fn init(
        &mut self,
        space: &mut S,
        b: &S::Vector,
        r0: S::Vector,
        st: &mut SolveProgress,
    ) -> Result<()> {
        match self.m.as_mut() {
            None => {
                self.w = Some(space.apply(&r0)?);
            }
            Some(m) => {
                let mut u = space.zeros_like(&r0);
                m.apply_into(space, &r0, &mut u)?;
                self.w = Some(space.apply(&u)?);
                self.u = Some(u);
                self.mw = Some(space.zeros_like(b));
                self.q = Some(space.zeros_like(b)); // tracks M⁻¹ s
            }
        }
        self.z = Some(space.zeros_like(b)); // tracks the A·(M⁻¹)s chain
        self.s = Some(space.zeros_like(b)); // tracks A p
        self.p = Some(space.zeros_like(b));
        self.r = Some(r0);
        self.gamma_old = 0.0;
        self.alpha_old = 0.0;
        self.fresh = true;
        st.relres = f64::INFINITY;
        Ok(())
    }

    fn step(
        &mut self,
        space: &mut S,
        x: &mut S::Vector,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        b: &S::Vector,
    ) -> Result<CgOutcome> {
        let preconditioned = self.m.is_some();
        // Number of solver pairs in the fused reduction: γ and δ, plus ‖r‖²
        // when preconditioned (γ = (r, M⁻¹r) is the M-norm, not the
        // convergence residual).
        let solver_len = if preconditioned { 3 } else { 2 };
        // Fused local partial reductions γ = (r, u), δ = (w, u) (with
        // u = r unpreconditioned), posted as a single nonblocking reduction
        // that also carries any policy check dots (wants-dots negotiation;
        // the recurrence maintains w = A·u, so (u, w) is the resolved
        // input/product pair — fused check decisions lag the overlapped
        // SpMV by one step) ...
        let (pending, batch) = {
            let r = self.r.as_ref().expect("initialized");
            let w = self.w.as_ref().expect("initialized");
            let dual = self.u.as_ref().unwrap_or(r);
            let mut pairs: Vec<(&S::Vector, &S::Vector)> = vec![(r, dual), (w, dual)];
            if preconditioned {
                pairs.push((r, r));
            }
            let avail = CheckVectors {
                spmv_input: Some(dual),
                spmv_product: Some(w),
                basis_pair: None,
            };
            let batch = policies.collect_check_dots(space, &st.ctx(), &avail, &mut pairs);
            (space.start_dots_tagged(&pairs, batch.len())?, batch)
        };
        // ... and overlapped with the preconditioner apply `mw = M⁻¹·w`,
        // the SpMV `aw = A·(M⁻¹)w` and any extra work.
        space.advance_extra_work()?;
        if let Some(m) = self.m.as_mut() {
            let w = self.w.as_ref().expect("initialized");
            let mw = self.mw.as_mut().expect("preconditioned state");
            m.apply_into(space, w, mw)?;
        }
        // The vector actually fed to A this step (mw is not mutated again
        // until the recurrence updates): hooks and the SpMV must see the
        // same input, so there is exactly one binding.
        let input = match self.mw.as_ref() {
            Some(mw) => mw,
            None => self.w.as_ref().expect("initialized"),
        };
        match policies.before_spmv(space, &st.ctx(), input)? {
            StackOutcome::Act(resp) => {
                // Complete the posted reduction before abandoning the step
                // (detections are rank-symmetric, so every rank drains it):
                // an in-flight collective must be waited on, and the solve
                // may continue after a Restart-response detection.
                space.finish_dots(pending)?;
                return Ok(CgOutcome::Detected(resp));
            }
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let aw = space.apply(input)?;
        let reduced = space.finish_dots(pending)?;
        policies.consume_check_dots(&st.ctx(), &batch, &reduced[solver_len..]);
        match policies.after_spmv(space, &st.ctx(), input, &aw)? {
            StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        // Guard the overlap-region preconditioner apply `mw = M⁻¹·w` *after*
        // the fused reduction completed (the hook contract lets a guard
        // policy post its own blocking collective) and *before* mw enters
        // the recurrence: a Restart detection returns with x and r
        // untouched this step.
        if preconditioned {
            let w = self.w.as_ref().expect("initialized");
            let mw = self.mw.as_ref().expect("preconditioned state");
            match policies.after_precond(space, &st.ctx(), w, mw)? {
                StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
                StackOutcome::Recorded | StackOutcome::Continue => {}
            }
        }
        let (gamma, delta) = (reduced[0], reduced[1]);
        let rr = if preconditioned { reduced[2] } else { gamma };

        st.relres = rr.max(0.0).sqrt() / st.bn;
        if st.history.is_empty() {
            st.history.push(st.relres);
        }
        if st.relres <= st.tol || !st.relres.is_finite() {
            return Ok(if st.relres <= st.tol {
                CgOutcome::Converged
            } else {
                CgOutcome::Diverged
            });
        }

        let (alpha, beta);
        if !self.fresh {
            beta = gamma / self.gamma_old;
            alpha = gamma / (delta - beta * gamma / self.alpha_old);
        } else {
            beta = 0.0;
            alpha = gamma / delta;
        }
        if !alpha.is_finite() || alpha == 0.0 {
            return Ok(CgOutcome::Breakdown);
        }

        // Recurrence updates (all local): z ← aw + βz, s ← w + βs,
        // p ← u + βp, x ← x + αp, r ← r − αs, u ← u − αq, w ← w − αz —
        // plus q ← mw + βq maintaining q = M⁻¹s when preconditioned.
        let r = self.r.as_mut().expect("initialized");
        let w = self.w.as_mut().expect("initialized");
        let z = self.z.as_mut().expect("initialized");
        let s = self.s.as_mut().expect("initialized");
        let p = self.p.as_mut().expect("initialized");
        space.xpby(&aw, beta, z);
        if preconditioned {
            let u = self.u.as_mut().expect("preconditioned state");
            let q = self.q.as_mut().expect("preconditioned state");
            let mw = self.mw.as_ref().expect("preconditioned state");
            space.xpby(mw, beta, q);
            space.xpby(w, beta, s);
            space.xpby(u, beta, p);
            space.axpy(alpha, p, x);
            space.axpy(-alpha, s, r);
            space.axpy(-alpha, q, u);
            space.axpy(-alpha, z, w);
            space.charge_flops(16 * space.local_len(p));
        } else {
            space.xpby(w, beta, s);
            space.xpby(r, beta, p);
            space.axpy(alpha, p, x);
            space.axpy(-alpha, s, r);
            space.axpy(-alpha, z, w);
            space.charge_flops(12 * space.local_len(p));
        }

        self.gamma_old = gamma;
        self.alpha_old = alpha;
        self.fresh = false;
        st.iterations += 1;
        st.history.push(st.relres);
        let mut probe = CgProbe::<S> {
            b,
            x,
            bn: st.bn,
            iteration: st.iterations,
        };
        match policies.on_iteration(space, &st.ctx(), &mut probe)? {
            StackOutcome::Act(resp) => return Ok(CgOutcome::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        Ok(CgOutcome::Continue)
    }
}
