//! Message envelopes exchanged between ranks.
//!
//! Payloads are a small closed set of dense types because the algorithms in
//! this suite exchange numeric vectors and occasionally control words; a
//! closed enum keeps serialization trivial and lets the runtime charge
//! communication cost from the payload size without a serialization pass.

use crate::error::{Result, RuntimeError};

/// Wildcard tag: matches any tag on receive.
pub const ANY_TAG: i32 = -1;
/// Wildcard source: matches any sender on receive.
pub const ANY_SOURCE: usize = usize::MAX;

/// Typed message payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Empty payload (synchronization-only message).
    Empty,
    /// Vector of 64-bit floats.
    F64(Vec<f64>),
    /// Vector of 64-bit unsigned integers.
    U64(Vec<u64>),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Payload {
    /// Size of the payload in bytes, used for communication cost accounting.
    pub fn byte_len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F64(v) => v.len() * std::mem::size_of::<f64>(),
            Payload::U64(v) => v.len() * std::mem::size_of::<u64>(),
            Payload::Bytes(v) => v.len(),
        }
    }

    /// Human-readable type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Payload::Empty => "empty",
            Payload::F64(_) => "f64",
            Payload::U64(_) => "u64",
            Payload::Bytes(_) => "bytes",
        }
    }

    /// Extract an `f64` vector or report a type mismatch.
    pub fn into_f64(self) -> Result<Vec<f64>> {
        match self {
            Payload::F64(v) => Ok(v),
            other => Err(RuntimeError::TypeMismatch {
                expected: "f64",
                found: other.type_name(),
            }),
        }
    }

    /// Extract a `u64` vector or report a type mismatch.
    pub fn into_u64(self) -> Result<Vec<u64>> {
        match self {
            Payload::U64(v) => Ok(v),
            other => Err(RuntimeError::TypeMismatch {
                expected: "u64",
                found: other.type_name(),
            }),
        }
    }

    /// Extract raw bytes or report a type mismatch.
    pub fn into_bytes(self) -> Result<Vec<u8>> {
        match self {
            Payload::Bytes(v) => Ok(v),
            other => Err(RuntimeError::TypeMismatch {
                expected: "bytes",
                found: other.type_name(),
            }),
        }
    }
}

impl From<Vec<f64>> for Payload {
    fn from(v: Vec<f64>) -> Self {
        Payload::F64(v)
    }
}

impl From<Vec<u64>> for Payload {
    fn from(v: Vec<u64>) -> Self {
        Payload::U64(v)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::Bytes(v)
    }
}

impl From<&[f64]> for Payload {
    fn from(v: &[f64]) -> Self {
        Payload::F64(v.to_vec())
    }
}

/// A message in flight between two ranks.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub source: usize,
    /// Destination rank.
    pub dest: usize,
    /// User tag (non-negative; [`ANY_TAG`] is reserved for receives).
    pub tag: i32,
    /// Communication epoch in which the message was sent; receives filter on
    /// the current epoch so that messages from before a recovery rendezvous
    /// cannot be mistaken for fresh data.
    pub epoch: u64,
    /// Sender's virtual time at the moment the send was posted.
    pub sent_at: f64,
    /// Payload.
    pub payload: Payload,
}

impl Message {
    /// Does this message match a receive posted for `(source, tag, epoch)`?
    pub fn matches(&self, source: usize, tag: i32, epoch: u64) -> bool {
        (source == ANY_SOURCE || self.source == source)
            && (tag == ANY_TAG || self.tag == tag)
            && self.epoch == epoch
    }

    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.payload.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(source: usize, tag: i32, epoch: u64) -> Message {
        Message {
            source,
            dest: 0,
            tag,
            epoch,
            sent_at: 0.0,
            payload: Payload::Empty,
        }
    }

    #[test]
    fn byte_len_per_type() {
        assert_eq!(Payload::Empty.byte_len(), 0);
        assert_eq!(Payload::F64(vec![0.0; 3]).byte_len(), 24);
        assert_eq!(Payload::U64(vec![0; 2]).byte_len(), 16);
        assert_eq!(Payload::Bytes(vec![0; 7]).byte_len(), 7);
    }

    #[test]
    fn into_f64_type_checks() {
        assert_eq!(
            Payload::F64(vec![1.0, 2.0]).into_f64().unwrap(),
            vec![1.0, 2.0]
        );
        let err = Payload::U64(vec![1]).into_f64().unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::TypeMismatch {
                expected: "f64",
                ..
            }
        ));
    }

    #[test]
    fn into_u64_and_bytes() {
        assert_eq!(Payload::U64(vec![5]).into_u64().unwrap(), vec![5]);
        assert_eq!(Payload::Bytes(vec![1, 2]).into_bytes().unwrap(), vec![1, 2]);
        assert!(Payload::Empty.into_u64().is_err());
        assert!(Payload::F64(vec![]).into_bytes().is_err());
    }

    #[test]
    fn matching_rules() {
        let m = msg(3, 7, 1);
        assert!(m.matches(3, 7, 1));
        assert!(m.matches(ANY_SOURCE, 7, 1));
        assert!(m.matches(3, ANY_TAG, 1));
        assert!(m.matches(ANY_SOURCE, ANY_TAG, 1));
        assert!(!m.matches(2, 7, 1));
        assert!(!m.matches(3, 8, 1));
        assert!(!m.matches(3, 7, 2), "stale-epoch messages must not match");
    }

    #[test]
    fn from_impls() {
        let p: Payload = vec![1.0f64, 2.0].into();
        assert_eq!(p.byte_len(), 16);
        let p: Payload = vec![1u64].into();
        assert_eq!(p.byte_len(), 8);
        let p: Payload = vec![1u8, 2, 3].into();
        assert_eq!(p.byte_len(), 3);
        let slice: &[f64] = &[1.0, 2.0, 3.0];
        let p: Payload = slice.into();
        assert_eq!(p.byte_len(), 24);
    }
}
