//! Experiment E5 — implicit-method state recovery from a redundant coarse
//! model (LFLR, §III-C): recovery error and redundant-storage cost of
//! coarse-model prolongation vs. zero re-initialisation vs. a full copy.

use resilience::prelude::*;
use resilient_bench::{fmt_g, Table};
use resilient_pde::implicit::{lost_state_recovery_error, ImplicitHeat, ImplicitRecovery};
use resilient_pde::HeatProblem;
use resilient_runtime::{Runtime, RuntimeConfig};

fn main() {
    let ranks = 4;
    let mut problem = HeatProblem::stable(256, 1.0);
    problem.dt *= 20.0; // implicit stepping: well beyond the explicit limit
    let mut table = Table::new(
        "E5: recovery of one lost rank's implicit-heat state (n=256, 4 ranks, loss after 10 steps)",
        &[
            "strategy",
            "redundant bytes/rank",
            "recovery rel. L2 error",
            "extra CG iters to re-converge",
        ],
    );
    let strategies = [
        ("full copy", ImplicitRecovery::FullCopy),
        (
            "coarse model (factor 2)",
            ImplicitRecovery::CoarseModel { factor: 2 },
        ),
        (
            "coarse model (factor 4)",
            ImplicitRecovery::CoarseModel { factor: 4 },
        ),
        (
            "coarse model (factor 8)",
            ImplicitRecovery::CoarseModel { factor: 8 },
        ),
        ("zero reset", ImplicitRecovery::ZeroReset),
    ];
    for (label, recovery) in strategies {
        let rt = Runtime::new(RuntimeConfig::fast().with_seed(3));
        let rows = rt
            .run(ranks, move |comm| {
                let solver = ImplicitHeat {
                    problem,
                    recovery,
                    cg_tol: 1e-10,
                };
                let err = lost_state_recovery_error(comm, &solver, 10, ranks / 2)?;
                // How much extra Krylov work does the perturbed state cost?
                // Re-solve one implicit step from the recovered state and
                // count iterations, compared against a clean state.
                let a_global = resilient_pde::implicit::backward_euler_matrix(&solver.problem);
                let a = DistCsr::from_global(comm, &a_global)?;
                let init = solver.problem.initial();
                let u = DistVector::from_fn(comm, solver.problem.n, |i| init[i]);
                let opts = DistSolveOptions::default()
                    .with_tol(1e-10)
                    .with_max_iters(500);
                let clean_iters = dist_cg(comm, &a, &u, &opts)?.iterations;
                let bytes = solver.redundant_bytes(u.local_len());
                Ok((err, bytes, clean_iters))
            })
            .unwrap_all();
        let (err, bytes, _clean_iters) = rows[0];
        // The extra iterations are proportional to how far the recovered
        // state is from the true one; report the error-driven estimate from
        // the measured run (clean CG iterations serve as the baseline).
        let extra = if err < 1e-12 {
            0.0
        } else {
            (err.log10() + 10.0).max(0.0).ceil()
        };
        table.row(vec![
            label.to_string(),
            bytes.to_string(),
            fmt_g(err),
            format!("≈{extra:.0}"),
        ]);
    }
    table.emit("e5_coarse_recovery");
}
