//! Job launcher: spawns the SPMD rank threads, monitors them, and spawns
//! replacement ranks after failures.

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use crate::comm::{Comm, RankKilled};
use crate::config::{FailurePolicy, RuntimeConfig};
use crate::error::{Result, RuntimeError};
use crate::health::FailureEvent;
use crate::persistent::StableStore;
use crate::stats::{JobStats, RankStats};
use crate::world::World;

/// Upper bound on replacement incarnations per rank, as a safety net against
/// pathological failure configurations.
pub(crate) const MAX_INCARNATIONS: u64 = 256;

/// Result of running one SPMD job.
#[derive(Debug)]
pub struct JobResult<R> {
    /// Per world rank: the value returned by the final incarnation that
    /// completed normally, if any.
    pub results: Vec<Option<R>>,
    /// Per world rank: the error returned by the final incarnation, if it
    /// returned one.
    pub errors: Vec<Option<RuntimeError>>,
    /// Per world rank: statistics of the final incarnation (ranks whose
    /// every incarnation was killed have default stats).
    pub stats: Vec<RankStats>,
    /// Statistics of every incarnation, including those killed by failures.
    pub all_stats: Vec<RankStats>,
    /// Failure events observed during the job.
    pub failures: Vec<FailureEvent>,
    /// True if the job was aborted (AbortJob policy and a failure occurred,
    /// or a rank called abort).
    pub aborted: bool,
    /// Aggregated job statistics.
    pub job: JobStats,
}

impl<R> JobResult<R> {
    /// Maximum virtual time over all final incarnations (the job makespan).
    pub fn makespan(&self) -> f64 {
        self.job.makespan
    }

    /// True if every rank completed with an `Ok` result.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(Option::is_some)
    }

    /// Unwrap all per-rank results, panicking if any rank failed.
    pub fn unwrap_all(self) -> Vec<R> {
        self.results
            .into_iter()
            .enumerate()
            .map(|(rank, r)| match r {
                Some(v) => v,
                None => panic!("rank {rank} did not produce a result"),
            })
            .collect()
    }

    /// The result of rank 0, panicking if it failed.
    pub fn rank0(self) -> R {
        self.results
            .into_iter()
            .next()
            .flatten()
            .expect("rank 0 did not produce a result")
    }
}

enum RankExit<R> {
    Done {
        rank: usize,
        result: Result<R>,
        stats: RankStats,
    },
    Killed(RankKilled),
    Panicked {
        rank: usize,
        message: String,
    },
}

/// The simulated-job launcher.
///
/// ```
/// use resilient_runtime::{Runtime, RuntimeConfig, ReduceOp};
///
/// let runtime = Runtime::new(RuntimeConfig::fast());
/// let result = runtime.run(4, |comm| {
///     let sum = comm.allreduce_scalar(ReduceOp::Sum, comm.rank() as f64)?;
///     Ok(sum)
/// });
/// assert_eq!(result.unwrap_all(), vec![6.0; 4]);
/// ```
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// Create a launcher with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        install_panic_hook();
        Self { config }
    }

    /// The configuration this launcher uses.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Run `f` on `size` ranks with a fresh stable store.
    pub fn run<R, F>(&self, size: usize, f: F) -> JobResult<R>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> Result<R> + Send + Sync + 'static,
    {
        self.run_with_stable(size, StableStore::new(), f)
    }

    /// Run `f` on `size` ranks, sharing the provided stable store (so a
    /// checkpoint/restart driver can run the job repeatedly against the same
    /// simulated file system).
    pub fn run_with_stable<R, F>(&self, size: usize, stable: StableStore, f: F) -> JobResult<R>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> Result<R> + Send + Sync + 'static,
    {
        assert!(size > 0, "cannot run a job with zero ranks");
        let world = World::new(self.config.clone(), size, stable);
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<RankExit<R>>();

        let mut handles = Vec::new();
        for rank in 0..size {
            handles.push(spawn_rank(
                Arc::clone(&world),
                Arc::clone(&f),
                tx.clone(),
                rank,
                0,
                0.0,
            ));
        }

        let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
        let mut errors: Vec<Option<RuntimeError>> = (0..size).map(|_| None).collect();
        let mut final_stats: Vec<RankStats> = (0..size)
            .map(|rank| RankStats {
                rank,
                ..RankStats::default()
            })
            .collect();
        let mut incarnations = vec![0u64; size];
        let mut remaining = size;

        while remaining > 0 {
            match rx.recv().expect("rank threads cannot all disappear") {
                RankExit::Done {
                    rank,
                    result,
                    stats,
                } => {
                    final_stats[rank] = stats;
                    match result {
                        Ok(v) => results[rank] = Some(v),
                        Err(e) => errors[rank] = Some(e),
                    }
                    remaining -= 1;
                }
                RankExit::Killed(info) => {
                    let respawn = self.config.failures.policy == FailurePolicy::ReplaceRank
                        && incarnations[info.rank] + 1 < MAX_INCARNATIONS;
                    if respawn {
                        incarnations[info.rank] += 1;
                        let incarnation = world.health.record_replacement(info.rank);
                        let start = info.time + self.config.replacement_cost;
                        handles.push(spawn_rank(
                            Arc::clone(&world),
                            Arc::clone(&f),
                            tx.clone(),
                            info.rank,
                            incarnation,
                            start,
                        ));
                    } else {
                        errors[info.rank] = Some(RuntimeError::ProcFailed {
                            rank: info.rank,
                            generation: info.generation,
                        });
                        remaining -= 1;
                    }
                }
                RankExit::Panicked { rank, message } => {
                    errors[rank] = Some(RuntimeError::InvalidArgument(format!(
                        "rank {rank} panicked: {message}"
                    )));
                    remaining -= 1;
                }
            }
        }
        drop(tx);
        for h in handles {
            let _ = h.join();
        }

        let failures = world.health.events();
        let aborted = world.health.is_aborted();
        let mut all_stats = world.lost_stats.lock().clone();
        all_stats.extend(final_stats.iter().cloned());
        let job = JobStats::aggregate(&final_stats, failures.len());
        JobResult {
            results,
            errors,
            stats: final_stats,
            all_stats,
            failures,
            aborted,
            job,
        }
    }
}

fn spawn_rank<R, F>(
    world: Arc<World>,
    f: Arc<F>,
    tx: mpsc::Sender<RankExit<R>>,
    rank: usize,
    incarnation: u64,
    start_time: f64,
) -> thread::JoinHandle<()>
where
    R: Send + 'static,
    F: Fn(&mut Comm) -> Result<R> + Send + Sync + 'static,
{
    thread::Builder::new()
        .name(format!("rank-{rank}.{incarnation}"))
        .spawn(move || {
            let mut comm = Comm::new(world, rank, incarnation, start_time);
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
            let exit = match outcome {
                Ok(result) => RankExit::Done {
                    rank,
                    result,
                    stats: comm.snapshot_stats(),
                },
                Err(payload) => match payload.downcast_ref::<RankKilled>() {
                    Some(info) => RankExit::Killed(*info),
                    None => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "unknown panic".to_string());
                        RankExit::Panicked { rank, message }
                    }
                },
            };
            // The receiver can only be gone if the launcher itself panicked.
            let _ = tx.send(exit);
        })
        .expect("failed to spawn rank thread")
}

/// Install a process-wide panic hook (once) that silences the expected
/// [`RankKilled`] unwinds so injected failures do not spam stderr, while
/// delegating every other panic to the previous hook.
pub(crate) fn install_panic_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<RankKilled>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::ReduceOp;
    use crate::config::{FailureConfig, LatencyModel, NoiseConfig};

    #[test]
    fn single_rank_job() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let r = rt.run(1, |comm| Ok(comm.rank()));
        assert_eq!(r.unwrap_all(), vec![0]);
    }

    #[test]
    fn allreduce_across_ranks() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let r = rt.run(6, |comm| {
            comm.allreduce_scalar(ReduceOp::Sum, (comm.rank() + 1) as f64)
        });
        assert_eq!(r.unwrap_all(), vec![21.0; 6]);
    }

    #[test]
    fn broadcast_gather_scan() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let r = rt.run(4, |comm| {
            let bcast = comm.broadcast(2, &[comm.rank() as f64 * 10.0])?;
            let gathered = comm.gather(0, &[comm.rank() as f64])?;
            let scanned = comm.scan(ReduceOp::Sum, &[1.0])?;
            let all = comm.allgather(&[comm.rank() as f64])?;
            Ok((bcast, gathered, scanned, all))
        });
        let results = r.unwrap_all();
        for (rank, (bcast, gathered, scanned, all)) in results.into_iter().enumerate() {
            assert_eq!(bcast, vec![20.0], "broadcast from root 2");
            if rank == 0 {
                assert_eq!(
                    gathered.unwrap(),
                    vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]
                );
            } else {
                assert!(gathered.is_none());
            }
            assert_eq!(scanned, vec![(rank + 1) as f64]);
            assert_eq!(all.len(), 4);
        }
    }

    #[test]
    fn ring_pass_point_to_point() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let n = 5;
        let r = rt.run(n, move |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_f64(next, 0, &[comm.rank() as f64])?;
            let (_, v) = comm.recv_f64(prev, 0)?;
            Ok(v[0])
        });
        let vals = r.unwrap_all();
        for (rank, v) in vals.iter().enumerate() {
            let prev = (rank + n - 1) % n;
            assert_eq!(*v, prev as f64);
        }
    }

    #[test]
    fn collective_synchronises_virtual_time() {
        let mut cfg = RuntimeConfig::fast();
        cfg.latency = LatencyModel {
            alpha: 0.5,
            beta: 0.0,
            gamma: 0.0,
        };
        let rt = Runtime::new(cfg);
        let r = rt.run(4, |comm| {
            // Unequal local work before the barrier.
            comm.advance(comm.rank() as f64);
            comm.barrier()?;
            Ok(comm.now())
        });
        let times = r.unwrap_all();
        let expected = 3.0 + 0.5 * 2.0; // slowest rank + 2 tree stages * alpha
        for t in times {
            assert!(
                (t - expected).abs() < 1e-9,
                "all ranks leave the barrier together: {t}"
            );
        }
    }

    #[test]
    fn nonblocking_allreduce_hides_latency() {
        let mut cfg = RuntimeConfig::fast();
        cfg.latency = LatencyModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
        };
        let rt = Runtime::new(cfg);
        let r = rt.run(4, |comm| {
            // Blocking version: dot + dependent work.
            let t0 = comm.now();
            let _ = comm.allreduce_scalar(ReduceOp::Sum, 1.0)?;
            comm.advance(5.0); // work that does NOT depend on the reduction
            let blocking_elapsed = comm.now() - t0;

            // Nonblocking version: overlap the same work with the reduction.
            let t1 = comm.now();
            let pending = comm.iallreduce_scalar(ReduceOp::Sum, 1.0)?;
            comm.advance(5.0);
            let _ = pending.wait_scalar(comm)?;
            let overlapped_elapsed = comm.now() - t1;
            Ok((blocking_elapsed, overlapped_elapsed))
        });
        for (blocking, overlapped) in r.unwrap_all() {
            assert!(
                overlapped < blocking - 1.0,
                "overlap should hide the 2-stage collective latency: blocking={blocking}, overlapped={overlapped}"
            );
            assert!(
                (overlapped - 5.0).abs() < 1e-9,
                "latency fully hidden by 5 s of work"
            );
        }
    }

    #[test]
    fn noise_slows_down_bulk_synchronous_steps() {
        let quiet = Runtime::new(
            RuntimeConfig::default()
                .with_seed(3)
                .with_noise(NoiseConfig::off()),
        );
        let noisy = Runtime::new(
            RuntimeConfig::default()
                .with_seed(3)
                .with_noise(NoiseConfig::exponential(50.0, 0.01)),
        );
        let run = |rt: &Runtime| -> f64 {
            let r = rt.run(8, |comm| {
                for _ in 0..20 {
                    comm.advance(0.01);
                    comm.allreduce_scalar(ReduceOp::Sum, 1.0)?;
                }
                Ok(comm.now())
            });
            r.job.makespan
        };
        let t_quiet = run(&quiet);
        let t_noisy = run(&noisy);
        assert!(
            t_noisy > t_quiet * 1.2,
            "noise amplification expected: quiet={t_quiet}, noisy={t_noisy}"
        );
    }

    #[test]
    fn halo_exchange_on_a_line() {
        use crate::topology::CartTopology;
        let rt = Runtime::new(RuntimeConfig::fast());
        let r = rt.run(4, |comm| {
            let topo = CartTopology::line(comm.size(), false);
            let me = comm.rank() as f64;
            let (left, right) = comm.exchange_boundaries_1d(&topo, &[me], &[me])?;
            Ok((left.map(|v| v[0]), right.map(|v| v[0])))
        });
        let vals = r.unwrap_all();
        assert_eq!(vals[0], (None, Some(1.0)));
        assert_eq!(vals[1], (Some(0.0), Some(2.0)));
        assert_eq!(vals[3], (Some(2.0), None));
    }

    #[test]
    fn abort_policy_tears_down_job() {
        let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
            FailurePolicy::AbortJob,
            vec![(1, 0.5)],
        ));
        let rt = Runtime::new(cfg);
        let r = rt.run(4, |comm| {
            for _ in 0..100 {
                comm.advance(0.1);
                comm.barrier()?;
            }
            Ok(())
        });
        assert!(r.aborted, "job must be marked aborted");
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].rank, 1);
        assert!(!r.all_ok());
        // Survivors observed the abort as an error.
        assert!(r.errors.iter().filter(|e| e.is_some()).count() >= 3);
    }

    #[test]
    fn replace_policy_spawns_replacement_and_recovers() {
        let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            vec![(2, 0.45)],
        ));
        let rt = Runtime::new(cfg);
        let r = rt.run(4, |comm| {
            let mut step = if comm.is_replacement() {
                // Recovery path: rejoin the others and resume from the agreed step.
                let info = comm.recovery_rendezvous(f64::INFINITY)?;
                info.agreed as usize
            } else {
                0
            };
            let mut recoveries = 0;
            while step < 10 {
                comm.advance(0.1);
                match comm.barrier() {
                    Ok(()) => step += 1,
                    Err(e) if e.is_failure() => {
                        let info = comm.recovery_rendezvous(step as f64)?;
                        step = info.agreed as usize;
                        recoveries += 1;
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok((comm.rank(), step, recoveries, comm.incarnation()))
        });
        assert!(!r.aborted);
        assert_eq!(r.failures.len(), 1);
        assert!(
            r.all_ok(),
            "all ranks (incl. replacement) must finish: {:?}",
            r.errors
        );
        let results = r.unwrap_all();
        assert_eq!(results.len(), 4);
        for (rank, step, _recoveries, incarnation) in &results {
            assert_eq!(*step, 10);
            if *rank == 2 {
                assert_eq!(
                    *incarnation, 1,
                    "rank 2 must be the replacement incarnation"
                );
            }
        }
        // Survivors saw exactly one recovery.
        assert!(results
            .iter()
            .any(|(rank, _, rec, _)| *rank != 2 && *rec == 1));
    }

    #[test]
    fn shrink_policy_rebuilds_smaller_comm() {
        let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
            FailurePolicy::Shrink,
            vec![(0, 0.25)],
        ));
        let rt = Runtime::new(cfg);
        let r = rt.run(3, |comm| {
            let mut sum = 0.0;
            for _ in 0..6 {
                comm.advance(0.1);
                match comm.allreduce_scalar(ReduceOp::Sum, 1.0) {
                    Ok(s) => sum = s,
                    Err(e) if e.is_failure() => {
                        let info = comm.shrink()?;
                        assert_eq!(info.new_size, 2);
                        assert_eq!(info.failed_ranks, vec![0]);
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok((comm.rank(), comm.size(), sum))
        });
        // Rank 0 died and is never replaced under Shrink.
        assert!(r.results[0].is_none());
        for rank in 1..3 {
            let (new_rank, new_size, sum) = r.results[rank].expect("survivor finishes");
            assert_eq!(new_size, 2);
            assert!(new_rank < 2);
            assert_eq!(sum, 2.0, "post-shrink allreduce spans 2 ranks");
        }
    }

    #[test]
    fn persistent_store_survives_failure() {
        let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            vec![(1, 0.35)],
        ));
        let rt = Runtime::new(cfg);
        let r = rt.run(2, |comm| {
            if comm.is_replacement() {
                // LFLR protocol: a replacement first joins the recovery
                // rendezvous, then recovers the dead incarnation's persistent
                // data.
                comm.recovery_rendezvous(0.0)?;
                let v = comm.restore(comm.rank(), "state")?.into_f64()?;
                assert_eq!(v, vec![101.0]);
            } else {
                comm.persist("state", vec![comm.rank() as f64 + 100.0])?;
            }
            let mut done = false;
            while !done {
                comm.advance(0.1);
                match comm.barrier() {
                    Ok(()) if comm.now() > 1.0 => done = true,
                    Ok(()) => {}
                    Err(e) if e.is_failure() => {
                        comm.recovery_rendezvous(0.0)?;
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(comm.incarnation())
        });
        assert!(r.all_ok(), "errors: {:?}", r.errors);
        assert_eq!(r.failures.len(), 1);
    }

    #[test]
    fn job_stats_are_collected() {
        let rt = Runtime::new(RuntimeConfig::default());
        let r = rt.run(3, |comm| {
            comm.advance(1.0);
            comm.send_f64((comm.rank() + 1) % comm.size(), 0, &[1.0, 2.0])?;
            let _ = comm.recv_f64(crate::message::ANY_SOURCE, 0)?;
            comm.barrier()?;
            Ok(())
        });
        assert!(r.all_ok());
        assert_eq!(r.job.total_messages, 3);
        assert_eq!(r.job.total_bytes, 48);
        assert_eq!(r.job.total_collectives, 3);
        assert!(r.job.makespan >= 1.0);
        assert!(r.job.mean_virtual_time > 0.0);
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_is_rejected() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let _ = rt.run(0, |_comm| Ok(()));
    }

    #[test]
    fn application_panic_is_reported_not_propagated() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let r = rt.run(2, |comm| {
            if comm.rank() == 1 {
                panic!("application bug");
            }
            Ok(comm.rank())
        });
        assert_eq!(r.results[0], Some(0));
        assert!(r.results[1].is_none());
        let err = r.errors[1].clone().unwrap();
        assert!(err.to_string().contains("application bug"));
    }
}
