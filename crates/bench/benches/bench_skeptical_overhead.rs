//! E1 bench: runtime overhead of the skeptical checks in a fault-free GMRES.

use criterion::{criterion_group, criterion_main, Criterion};
use resilience::prelude::*;
use resilient_linalg::poisson2d;
use std::time::Duration;

fn bench_skeptical(c: &mut Criterion) {
    let a = poisson2d(16, 16);
    let b = vec![1.0; a.nrows()];
    let opts = SolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(400)
        .with_restart(30);
    let mut group = c.benchmark_group("gmres_fault_free");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    group.bench_function("plain", |bch| {
        bch.iter(|| std::hint::black_box(gmres(&a, &b, None, &opts)))
    });
    group.bench_function("skeptical", |bch| {
        bch.iter(|| {
            std::hint::black_box(skeptical_gmres(
                &a,
                &b,
                None,
                &opts,
                &SkepticalConfig::default(),
            ))
        })
    });
    group.bench_function("trusting_config", |bch| {
        bch.iter(|| {
            std::hint::black_box(skeptical_gmres(
                &a,
                &b,
                None,
                &opts,
                &SkepticalConfig::trusting(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_skeptical);
criterion_main!(benches);
