//! Flexible GMRES (FGMRES): the reliable *outer* iteration of the paper's
//! §III-D "reliable outer iterations" pattern.
//!
//! FGMRES allows the preconditioner to change from iteration to iteration —
//! which is exactly what is needed when the "preconditioner" is an entire
//! inner solve executed in unreliable (cheap) mode: whatever the inner solve
//! returns, correct or corrupted, is treated as just another subspace vector
//! by the outer iteration, which is what makes the combination robust.

use resilient_linalg::vector::{dot, nrm2, scale};
use resilient_linalg::HessenbergLsq;

use super::common::{Operator, SolveOptions, SolveOutcome, StopReason};

/// A possibly nonlinear, possibly *unreliable* preconditioner application
/// `z ≈ A⁻¹·v` that may differ on every call. The flexible outer iteration
/// only requires that the returned vector is finite to make progress; even
/// that is checked skeptically by [`fgmres`].
pub trait FlexiblePreconditioner {
    /// Apply the (inner) solver to `v`.
    fn apply(&mut self, v: &[f64]) -> Vec<f64>;
    /// Name for reporting.
    fn name(&self) -> &'static str {
        "flexible-preconditioner"
    }
}

/// The trivial flexible preconditioner: identity (turns FGMRES into GMRES).
pub struct IdentityFlexible;

impl FlexiblePreconditioner for IdentityFlexible {
    fn apply(&mut self, v: &[f64]) -> Vec<f64> {
        v.to_vec()
    }
    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Statistics of one FGMRES run beyond the generic outcome.
#[derive(Debug, Clone, Default)]
pub struct FgmresReport {
    /// Number of inner (preconditioner) applications.
    pub inner_applications: usize,
    /// Number of inner applications whose result was rejected by the outer
    /// skeptical check (non-finite values) and replaced by the unpreconditioned
    /// residual direction.
    pub rejected_inner_results: usize,
}

/// Flexible GMRES with restart, applying `m` as a (possibly varying,
/// possibly unreliable) right preconditioner.
pub fn fgmres<O: Operator + ?Sized, M: FlexiblePreconditioner + ?Sized>(
    a: &O,
    m: &mut M,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &SolveOptions,
) -> (SolveOutcome, FgmresReport) {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    let mut x = x0.map(|v| v.to_vec()).unwrap_or_else(|| vec![0.0; n]);
    let bn = nrm2(b).max(f64::MIN_POSITIVE);
    let restart = opts.restart.max(1);
    let mut history = Vec::new();
    let mut total_iters = 0usize;
    let mut flops = 0usize;
    let mut report = FgmresReport::default();

    loop {
        let ax = a.apply(&x);
        flops += a.flops_per_apply();
        let r0: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let beta = nrm2(&r0);
        let mut relres = beta / bn;
        if history.is_empty() {
            history.push(relres);
        }
        if relres <= opts.tol {
            return (
                SolveOutcome {
                    x,
                    iterations: total_iters,
                    relative_residual: relres,
                    reason: StopReason::Converged,
                    history,
                    flops,
                },
                report,
            );
        }

        // Outer Arnoldi with flexible preconditioning: store both the
        // orthonormal basis V and the preconditioned vectors Z.
        let mut v0 = r0;
        scale(1.0 / beta, &mut v0);
        let mut v_basis = vec![v0];
        let mut z_basis: Vec<Vec<f64>> = Vec::new();
        let mut lsq = HessenbergLsq::new(restart, beta);
        let mut breakdown = false;

        for _ in 0..restart {
            if total_iters >= opts.max_iters {
                break;
            }
            let vj = v_basis.last().expect("basis never empty").clone();
            // Inner (unreliable) solve. The outer iteration is the reliable
            // part: it validates the result before using it.
            let mut z = m.apply(&vj);
            report.inner_applications += 1;
            if z.len() != n || z.iter().any(|v| !v.is_finite()) {
                // Skeptical outer iteration: discard garbage inner results and
                // fall back to the unpreconditioned direction; the subspace
                // still grows and convergence degrades gracefully instead of
                // being destroyed.
                report.rejected_inner_results += 1;
                z = vj.clone();
            }
            let mut w = a.apply(&z);
            flops += a.flops_per_apply() + 4 * n * (v_basis.len() + 1);
            // Modified Gram–Schmidt.
            let mut h = Vec::with_capacity(v_basis.len() + 1);
            for v in &v_basis {
                let hij = dot(v, &w);
                for (wi, vi) in w.iter_mut().zip(v) {
                    *wi -= hij * vi;
                }
                h.push(hij);
            }
            let h_next = nrm2(&w);
            h.push(h_next);
            let res_est = lsq.push_column(&h);
            z_basis.push(z);
            total_iters += 1;
            relres = res_est / bn;
            history.push(relres);
            if h_next <= f64::EPSILON * beta.max(1.0) {
                breakdown = true;
                break;
            }
            scale(1.0 / h_next, &mut w);
            v_basis.push(w);
            if relres <= opts.tol {
                break;
            }
        }

        // x += Z_k · y_k
        if !z_basis.is_empty() {
            let y = lsq.solve();
            for (j, yj) in y.iter().enumerate() {
                for (xi, zi) in x.iter_mut().zip(&z_basis[j]) {
                    *xi += yj * zi;
                }
            }
        }
        let ax = a.apply(&x);
        flops += a.flops_per_apply();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let true_relres = nrm2(&r) / bn;
        if true_relres <= opts.tol {
            return (
                SolveOutcome {
                    x,
                    iterations: total_iters,
                    relative_residual: true_relres,
                    reason: StopReason::Converged,
                    history,
                    flops,
                },
                report,
            );
        }
        if breakdown || total_iters >= opts.max_iters {
            return (
                SolveOutcome {
                    x,
                    iterations: total_iters,
                    relative_residual: true_relres,
                    reason: if breakdown {
                        StopReason::Breakdown
                    } else {
                        StopReason::MaxIterations
                    },
                    history,
                    flops,
                },
                report,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::cg::cg;
    use crate::solvers::common::true_relative_residual;
    use resilient_linalg::{poisson2d, CsrMatrix};

    #[test]
    fn identity_preconditioner_reduces_to_gmres() {
        let a = poisson2d(8, 8);
        let b = vec![1.0; a.nrows()];
        let (out, report) = fgmres(
            &a,
            &mut IdentityFlexible,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-9).with_max_iters(400),
        );
        assert!(out.converged());
        assert!(report.inner_applications >= out.iterations);
        assert_eq!(report.rejected_inner_results, 0);
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-8);
    }

    /// An inner preconditioner that runs a few CG iterations — a realistic
    /// inner-outer configuration.
    struct InnerCg {
        a: CsrMatrix,
        iters: usize,
    }
    impl FlexiblePreconditioner for InnerCg {
        fn apply(&mut self, v: &[f64]) -> Vec<f64> {
            cg(
                &self.a,
                v,
                None,
                &SolveOptions::default()
                    .with_tol(1e-2)
                    .with_max_iters(self.iters),
            )
            .x
        }
    }

    #[test]
    fn inner_solver_accelerates_outer() {
        let a = poisson2d(10, 10);
        let b = vec![1.0; a.nrows()];
        let opts = SolveOptions::default()
            .with_tol(1e-9)
            .with_max_iters(300)
            .with_restart(30);
        let (plain, _) = fgmres(&a, &mut IdentityFlexible, &b, None, &opts);
        let mut inner = InnerCg {
            a: a.clone(),
            iters: 8,
        };
        let (accel, report) = fgmres(&a, &mut inner, &b, None, &opts);
        assert!(plain.converged() && accel.converged());
        assert!(
            accel.iterations < plain.iterations,
            "inner CG must reduce outer iterations: {} vs {}",
            accel.iterations,
            plain.iterations
        );
        assert_eq!(report.rejected_inner_results, 0);
    }

    /// An inner "solver" that sometimes returns garbage (NaNs) — the outer
    /// iteration must survive it.
    struct FlakyInner {
        calls: usize,
    }
    impl FlexiblePreconditioner for FlakyInner {
        fn apply(&mut self, v: &[f64]) -> Vec<f64> {
            self.calls += 1;
            if self.calls % 3 == 0 {
                vec![f64::NAN; v.len()]
            } else {
                v.to_vec()
            }
        }
    }

    #[test]
    fn garbage_inner_results_are_rejected_not_fatal() {
        let a = poisson2d(7, 7);
        let b = vec![1.0; a.nrows()];
        let (out, report) = fgmres(
            &a,
            &mut FlakyInner { calls: 0 },
            &b,
            None,
            &SolveOptions::default().with_tol(1e-8).with_max_iters(400),
        );
        assert!(
            out.converged(),
            "outer iteration must absorb garbage inner results"
        );
        assert!(report.rejected_inner_results > 0);
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-7);
    }

    #[test]
    fn exact_guess_short_circuits() {
        let a = poisson2d(5, 5);
        let x_true = vec![1.5; a.nrows()];
        let b = a.spmv(&x_true);
        let (out, _) = fgmres(
            &a,
            &mut IdentityFlexible,
            &b,
            Some(&x_true),
            &SolveOptions::default(),
        );
        assert_eq!(out.iterations, 0);
        assert!(out.converged());
    }
}
