//! The LFLR step-loop driver.

use resilient_runtime::{Comm, ReduceOp, Result};

/// A step-structured SPMD application that can persist and recover its
/// per-rank state — the contract the LFLR programming model asks the
/// application developer to meet.
pub trait LflrApp {
    /// Per-rank application state.
    type State;

    /// Build the initial state (step 0).
    fn init(&self, comm: &mut Comm) -> Result<Self::State>;

    /// Advance the state from `step` to `step + 1`.
    fn step(&self, comm: &mut Comm, state: &mut Self::State, step: usize) -> Result<()>;

    /// Persist whatever is needed to recover `state` as of (completed) step
    /// `step`. Called every [`persist_interval`](Self::persist_interval)
    /// steps on every rank.
    fn persist(&self, comm: &mut Comm, state: &Self::State, step: usize) -> Result<()>;

    /// Rebuild the state as of step `step` from persistent data. On a
    /// replacement rank this reconstructs the dead incarnation's state
    /// (possibly with neighbour help); on survivors it rolls their state
    /// back to the agreed step.
    fn recover(&self, comm: &mut Comm, step: usize) -> Result<Self::State>;

    /// The newest step this rank could recover from its (possibly inherited)
    /// persistent store, or `None` if the application cannot tell. A
    /// replacement rank proposes this at the recovery rendezvous so the
    /// agreed rollback step is never newer than what the dead incarnation
    /// actually persisted; the default (`None`) proposes "anything", letting
    /// the survivors' persist state decide.
    fn last_recoverable(&self, _comm: &mut Comm) -> Option<usize> {
        None
    }

    /// Total number of steps to run.
    fn n_steps(&self) -> usize;

    /// Persist every this many steps (default: every step).
    fn persist_interval(&self) -> usize {
        1
    }
}

/// What happened during an LFLR-driven run (per rank).
#[derive(Debug, Clone, PartialEq)]
pub struct LflrReport {
    /// Steps completed (always `n_steps` on success).
    pub steps_completed: usize,
    /// Number of recovery rendezvous this rank participated in.
    pub recoveries: usize,
    /// Number of steps that had to be re-executed due to rollbacks.
    pub steps_reexecuted: usize,
    /// Virtual time when the run finished.
    pub finished_at: f64,
}

/// Run `app` to completion under the LFLR protocol. Call from inside an SPMD
/// closure launched with the
/// [`ReplaceRank`](resilient_runtime::FailurePolicy::ReplaceRank) policy.
/// Returns the report and the final state.
pub fn run_lflr<A: LflrApp>(comm: &mut Comm, app: &A) -> Result<(LflrReport, A::State)> {
    let n_steps = app.n_steps();
    let persist_interval = app.persist_interval().max(1);
    let mut recoveries = 0usize;
    let mut steps_reexecuted = 0usize;

    // A replacement rank has no state at all: it first joins the recovery
    // rendezvous — proposing the newest step recoverable from the inherited
    // persistent store (or +inf when the application cannot tell, so the
    // survivors' last persisted step wins) — then rebuilds its state from
    // persistent data.
    let (mut state, mut step, mut last_persisted) = if comm.is_replacement() {
        let proposal = app
            .last_recoverable(comm)
            .map(|s| s as f64)
            .unwrap_or(f64::INFINITY);
        let info = comm.recovery_rendezvous(proposal)?;
        recoveries += 1;
        let resume = if info.agreed.is_finite() {
            info.agreed.max(0.0) as usize
        } else {
            0
        };
        let state = app.recover(comm, resume)?;
        (state, resume, resume)
    } else {
        let state = app.init(comm)?;
        app.persist(comm, &state, 0)?;
        (state, 0usize, 0usize)
    };

    while step < n_steps {
        match app.step(comm, &mut state, step) {
            Ok(()) => {
                step += 1;
                if step % persist_interval == 0 || step == n_steps {
                    app.persist(comm, &state, step)?;
                    last_persisted = step;
                }
            }
            Err(e) if e.is_failure() => {
                // A peer failed mid-step. Join the rendezvous, agree on the
                // globally safe restart step, and roll back locally.
                let info = comm.recovery_rendezvous(last_persisted as f64)?;
                recoveries += 1;
                let resume = info.agreed.max(0.0) as usize;
                steps_reexecuted += step.saturating_sub(resume);
                state = app.recover(comm, resume)?;
                step = resume;
                last_persisted = resume;
            }
            Err(e) => return Err(e),
        }
    }

    // One final agreement so every rank (including late replacements) leaves
    // together and failures arriving after the last step still get handled
    // by somebody. Failures here are rare; treat them like mid-step ones.
    loop {
        match comm.allreduce_scalar(ReduceOp::Min, step as f64) {
            Ok(_) => break,
            Err(e) if e.is_failure() => {
                let info = comm.recovery_rendezvous(last_persisted as f64)?;
                recoveries += 1;
                let resume = info.agreed.max(0.0) as usize;
                if resume < step {
                    steps_reexecuted += step - resume;
                    state = app.recover(comm, resume)?;
                    let mut s = resume;
                    while s < n_steps {
                        app.step(comm, &mut state, s)?;
                        s += 1;
                        if s % persist_interval == 0 || s == n_steps {
                            app.persist(comm, &state, s)?;
                        }
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }

    Ok((
        LflrReport {
            steps_completed: step,
            recoveries,
            steps_reexecuted,
            finished_at: comm.now(),
        },
        state,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_runtime::{FailureConfig, FailurePolicy, Runtime, RuntimeConfig, Stored};

    /// A toy LFLR application: each rank accumulates `step_value` once per
    /// step and persists its accumulator. Communication per step: a barrier,
    /// so failures are observed by everyone.
    struct Accumulator {
        steps: usize,
        work_per_step: f64,
    }

    impl LflrApp for Accumulator {
        type State = f64;

        fn init(&self, _comm: &mut Comm) -> Result<f64> {
            Ok(0.0)
        }

        fn step(&self, comm: &mut Comm, state: &mut f64, _step: usize) -> Result<()> {
            comm.advance(self.work_per_step);
            comm.barrier()?;
            *state += 1.0;
            Ok(())
        }

        fn persist(&self, comm: &mut Comm, state: &f64, step: usize) -> Result<()> {
            comm.persist("acc", *state)?;
            comm.persist("step", step as f64)?;
            Ok(())
        }

        fn recover(&self, comm: &mut Comm, step: usize) -> Result<f64> {
            // The accumulator value is recoverable from the step index alone
            // if persistent data is missing (a fresh replacement whose
            // predecessor never persisted), otherwise read it back.
            let me = comm.rank();
            if comm.persisted(me, "acc") {
                let acc = comm.restore(me, "acc")?.into_scalar()?;
                let persisted_step = comm.restore(me, "step")?.into_scalar()? as usize;
                if persisted_step == step {
                    return Ok(acc);
                }
            }
            Ok(step as f64)
        }

        fn n_steps(&self) -> usize {
            self.steps
        }
    }

    #[test]
    fn failure_free_run_completes_all_steps() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(4, |comm| {
                let app = Accumulator {
                    steps: 12,
                    work_per_step: 0.01,
                };
                let (report, state) = run_lflr(comm, &app)?;
                Ok((report, state))
            })
            .unwrap_all();
        for (report, state) in results {
            assert_eq!(report.steps_completed, 12);
            assert_eq!(report.recoveries, 0);
            assert_eq!(report.steps_reexecuted, 0);
            assert_eq!(state, 12.0);
        }
    }

    #[test]
    fn single_failure_is_recovered_locally() {
        let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            vec![(2, 0.55)],
        ));
        let rt = Runtime::new(cfg);
        let r = rt.run(4, |comm| {
            let app = Accumulator {
                steps: 15,
                work_per_step: 0.1,
            };
            let (report, state) = run_lflr(comm, &app)?;
            Ok((comm.rank(), comm.incarnation(), report, state))
        });
        assert!(r.all_ok(), "errors: {:?}", r.errors);
        assert_eq!(r.failures.len(), 1);
        let results = r.unwrap_all();
        for (rank, incarnation, report, state) in results {
            assert_eq!(report.steps_completed, 15);
            assert_eq!(state, 15.0, "rank {rank} final state");
            if rank == 2 {
                assert_eq!(incarnation, 1, "rank 2 must have been replaced");
            } else {
                assert!(report.recoveries >= 1, "survivors participate in recovery");
            }
        }
    }

    #[test]
    fn two_failures_on_different_ranks_are_both_recovered() {
        let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            vec![(1, 0.35), (3, 0.95)],
        ));
        let rt = Runtime::new(cfg);
        let r = rt.run(4, |comm| {
            let app = Accumulator {
                steps: 14,
                work_per_step: 0.1,
            };
            let (report, state) = run_lflr(comm, &app)?;
            Ok((report.steps_completed, state, comm.incarnation()))
        });
        assert!(r.all_ok(), "errors: {:?}", r.errors);
        assert_eq!(r.failures.len(), 2);
        for (steps, state, _inc) in r.unwrap_all() {
            assert_eq!(steps, 14);
            assert_eq!(state, 14.0);
        }
    }

    #[test]
    fn persistent_data_is_actually_used_by_the_replacement() {
        // Persist a sentinel under a distinct key before the failure and make
        // sure the replacement can read the dead incarnation's data.
        let cfg = RuntimeConfig::fast().with_failures(FailureConfig::scheduled(
            FailurePolicy::ReplaceRank,
            vec![(0, 0.45)],
        ));
        let rt = Runtime::new(cfg);
        let r = rt.run(2, |comm| {
            if !comm.is_replacement() {
                comm.persist("sentinel", vec![comm.rank() as f64 + 7.0])?;
            }
            let app = Accumulator {
                steps: 10,
                work_per_step: 0.1,
            };
            let (_report, _state) = run_lflr(comm, &app)?;
            // After the run, every incarnation can see the original sentinel.
            let v = comm.restore(comm.rank(), "sentinel")?.into_f64()?;
            Ok(Stored::F64(v))
        });
        assert!(r.all_ok(), "errors: {:?}", r.errors);
        let vals = r.unwrap_all();
        assert_eq!(vals[0], Stored::F64(vec![7.0]));
        assert_eq!(vals[1], Stored::F64(vec![8.0]));
    }
}
