//! # resilient-faults
//!
//! Fault models and injection machinery for the resilience suite:
//!
//! * [`bitflip`] — single-event-upset bit flips in floating-point data and a
//!   severity classification of their numerical effect;
//! * [`process`] — fault arrival processes (Bernoulli, Poisson, Weibull,
//!   deterministic schedules);
//! * [`injector`] — reproducible fault-injection campaigns and their
//!   statistics (detected / benign / silent-corruption / loud-failure);
//! * [`memory`] — unreliable memory regions and the two-tier reliability
//!   cost model used by Selective Reliability Programming;
//! * [`tmr`] — triple modular redundancy execution and voting;
//! * [`detection`] — cheap "skeptical" validity checks (finiteness, norm
//!   bounds, orthogonality, conservation, relative jumps);
//! * [`thread_death`] — deterministic rank-death plans for the real-threads
//!   backend, delivered as `catch_unwind`-isolated panics;
//! * [`campaign`] — adversarial multi-event fault schedules (composable
//!   strike plans with per-event incarnation pinning, rank-death event
//!   lists, a seeded family taxonomy, and a greedy schedule minimizer).

#![warn(missing_docs)]

pub mod bitflip;
pub mod campaign;
pub mod detection;
pub mod injector;
pub mod memory;
pub mod process;
pub mod thread_death;
pub mod tmr;

pub use bitflip::{
    classify_flip, flip_bit_f64, flip_random_bit_f64, flip_random_element, FlipSeverity,
};
pub use campaign::{DeathEvent, FaultFamily, FaultSchedule, ScheduleParams, Strike, StrikePlan};
pub use detection::{
    conservation_check, orthogonality_check, Detection, Detector, FiniteDetector,
    NormBoundDetector, RelativeJumpDetector,
};
pub use injector::{CampaignStats, FaultInjector, InjectionRecord, SdcOutcome};
pub use memory::{Reliability, ReliabilityModel, UnreliableRegion};
pub use process::{FaultClock, FaultProcess};
pub use thread_death::{KillTrigger, ThreadDeathPlan};
pub use tmr::{tmr_execute, tmr_vote_vectors, TmrOutcome, TmrStats};
