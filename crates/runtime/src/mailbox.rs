//! Per-rank mailboxes with tag matching.
//!
//! Each rank owns one [`Mailbox`]. Sends append to the destination mailbox;
//! receives scan the mailbox for the first message matching `(source, tag,
//! epoch)` and block on a condition variable until one arrives, a peer
//! failure interrupts the wait, or the job aborts.

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

use crate::message::Message;

/// Outcome of a single poll of the mailbox.
pub enum PollOutcome {
    /// A matching message was found and removed.
    Found(Box<Message>),
    /// No matching message is currently queued.
    Empty,
}

/// A mailbox holding undelivered messages for one rank.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<Vec<Message>>,
    signal: Condvar,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a message and wake any waiting receiver.
    pub fn deposit(&self, msg: Message) {
        let mut q = self.queue.lock();
        q.push(msg);
        drop(q);
        self.signal.notify_all();
    }

    /// Remove and return the first message matching `(source, tag, epoch)`,
    /// if any. Messages from *older* epochs that are scanned along the way
    /// are discarded: they belong to a communication epoch that ended with a
    /// recovery rendezvous and must not satisfy post-recovery receives.
    pub fn poll(&self, source: usize, tag: i32, epoch: u64) -> PollOutcome {
        let mut q = self.queue.lock();
        // Drop stale messages first so the queue cannot grow without bound
        // across many recoveries.
        q.retain(|m| m.epoch >= epoch);
        if let Some(pos) = q.iter().position(|m| m.matches(source, tag, epoch)) {
            PollOutcome::Found(Box::new(q.remove(pos)))
        } else {
            PollOutcome::Empty
        }
    }

    /// Block until [`deposit`](Self::deposit) or [`interrupt`](Self::interrupt)
    /// is called, or `timeout` elapses. The caller re-polls afterwards; this
    /// is a pure wakeup mechanism and makes no promise about message
    /// availability.
    pub fn wait(&self, timeout: Duration) {
        let mut q = self.queue.lock();
        // The queue may already hold a matching message deposited between the
        // caller's poll and this wait; waiting with a timeout (rather than
        // indefinitely) bounds the cost of that race, and the condvar wakeup
        // covers the common case.
        self.signal.wait_for(&mut q, timeout);
    }

    /// Wake all waiters without depositing a message (used when a failure or
    /// revocation must interrupt blocked receives).
    pub fn interrupt(&self) {
        self.signal.notify_all();
    }

    /// Number of queued messages (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard every queued message from an epoch earlier than `epoch`.
    pub fn purge_older_than(&self, epoch: u64) {
        self.queue.lock().retain(|m| m.epoch >= epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Payload, ANY_SOURCE, ANY_TAG};
    use std::sync::Arc;
    use std::thread;

    fn msg(source: usize, tag: i32, epoch: u64, val: f64) -> Message {
        Message {
            source,
            dest: 0,
            tag,
            epoch,
            sent_at: 0.0,
            payload: Payload::F64(vec![val]),
        }
    }

    #[test]
    fn deposit_then_poll() {
        let mb = Mailbox::new();
        mb.deposit(msg(1, 5, 0, 1.0));
        match mb.poll(1, 5, 0) {
            PollOutcome::Found(m) => assert_eq!(m.payload, Payload::F64(vec![1.0])),
            PollOutcome::Empty => panic!("expected a message"),
        }
        assert!(mb.is_empty());
    }

    #[test]
    fn poll_respects_source_and_tag() {
        let mb = Mailbox::new();
        mb.deposit(msg(1, 5, 0, 1.0));
        assert!(matches!(mb.poll(2, 5, 0), PollOutcome::Empty));
        assert!(matches!(mb.poll(1, 6, 0), PollOutcome::Empty));
        assert!(matches!(
            mb.poll(ANY_SOURCE, ANY_TAG, 0),
            PollOutcome::Found(_)
        ));
    }

    #[test]
    fn fifo_within_matches() {
        let mb = Mailbox::new();
        mb.deposit(msg(1, 5, 0, 1.0));
        mb.deposit(msg(1, 5, 0, 2.0));
        if let PollOutcome::Found(m) = mb.poll(1, 5, 0) {
            assert_eq!(m.payload, Payload::F64(vec![1.0]));
        } else {
            panic!();
        }
        if let PollOutcome::Found(m) = mb.poll(1, 5, 0) {
            assert_eq!(m.payload, Payload::F64(vec![2.0]));
        } else {
            panic!();
        }
    }

    #[test]
    fn stale_epochs_are_dropped() {
        let mb = Mailbox::new();
        mb.deposit(msg(1, 5, 0, 1.0));
        mb.deposit(msg(1, 5, 1, 2.0));
        // Polling at epoch 1 must not return the epoch-0 message, and must
        // discard it.
        if let PollOutcome::Found(m) = mb.poll(1, 5, 1) {
            assert_eq!(m.payload, Payload::F64(vec![2.0]));
        } else {
            panic!();
        }
        assert!(mb.is_empty());
    }

    #[test]
    fn purge_removes_old_epochs_only() {
        let mb = Mailbox::new();
        mb.deposit(msg(0, 0, 0, 1.0));
        mb.deposit(msg(0, 0, 3, 2.0));
        mb.purge_older_than(2);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn waiters_are_woken_by_deposit() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = thread::spawn(move || {
            for _ in 0..200 {
                if let PollOutcome::Found(m) = mb2.poll(ANY_SOURCE, ANY_TAG, 0) {
                    return m.payload.into_f64().unwrap()[0];
                }
                mb2.wait(Duration::from_millis(10));
            }
            panic!("never received");
        });
        thread::sleep(Duration::from_millis(20));
        mb.deposit(msg(3, 9, 0, 42.0));
        assert_eq!(handle.join().unwrap(), 42.0);
    }

    #[test]
    fn interrupt_wakes_without_message() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = thread::spawn(move || {
            mb2.wait(Duration::from_secs(5));
            true
        });
        thread::sleep(Duration::from_millis(20));
        mb.interrupt();
        assert!(handle.join().unwrap());
        assert!(mb.is_empty());
    }
}
