//! Block (multi-RHS) preconditioned conjugate gradients: one operator
//! sweep and **one** collective per reduction point serve every right-hand
//! side in the batch, so the per-iteration collective count is independent
//! of the batch width `k`.
//!
//! The paper's cost model makes allreduce latency the scaling wall of the
//! recurrence (§II-B); the "millions of users" workload it motivates solves
//! *many* right-hand sides against few operators. This kernel amortizes
//! the wall over the batch: [`run_block_cg`] is the batched twin of
//! [`run_cg`](super::run_cg), with [`BlockCgMode::Fused`] mirroring
//! [`FusedCgStep::preconditioned`](super::FusedCgStep) (two blocking
//! batched reductions per iteration) and [`BlockCgMode::Pipelined`]
//! mirroring [`PipelinedCgStep::preconditioned`](super::PipelinedCgStep)
//! (one nonblocking batched reduction posted before the overlapped
//! preconditioner + SpMM).
//!
//! **Lane width is part of the spec.** Every column runs exactly the
//! single-RHS recurrence — backends only amortize memory traffic and
//! collective latency, never reassociate across columns — so at `k = 1`
//! the solve is bit-identical (iterates, residual history, collective
//! schedule, virtual-time charges) to the corresponding single-RHS preset.
//!
//! **Convergence masking.** Columns converge (or break down)
//! independently. A finished column *freezes*: its iterate, recurrence
//! vectors and preconditioner applies stop — it no longer charges
//! arithmetic — but its slots stay in every reduction payload, so every
//! rank posts identical collectives in identical order (the repo's
//! collective-symmetry rule). Frozen slots carry stale-but-deterministic
//! partials: the freeze decision is made from globally reduced scalars,
//! hence rank-symmetric.
//!
//! **Policy integration.** The same [`PolicyStack`] hooks run at the same
//! points as in the single-RHS kernel. Hooks operate on single vectors, so
//! the block kernel presents *guard* views of column 0 (bitwise the whole
//! story at `k = 1`); `on_failure` recovery likewise restores through the
//! column-0 guard. Check dots ride the batched reductions (wants-dots
//! fusion), so detection still adds zero collectives per iteration. One
//! deviation from the single-RHS fused step: the block kernel *always*
//! fuses its first reduction, so with no check requests the `after_spmv`
//! hook runs after the reduction instead of before it (indistinguishable
//! unless a policy both requests no dots and acts in `after_spmv`).
//!
//! Single-event-upset injection ([`SpmvFault`](super::SpmvFault)) targets
//! the single-vector apply path and does not fire inside blocked applies.

use resilient_runtime::{CommBackend, Result};

use super::policy::{
    CheckVectors, DetectionResponse, FailureEvent, PolicyStack, RecoveryAction, SolutionProbe,
    StackOutcome,
};
use super::precond::SpacePreconditioner;
use super::space::{DistSpace, KrylovSpace};
use super::{KernelReport, SolveProgress};
use crate::distributed::{DistMultiVector, DistVector};
use crate::solvers::common::{SolveOptions, StopReason};

/// Which reduction schedule the block kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCgMode {
    /// Two blocking batched reductions per iteration — the batched
    /// [`FusedCgStep::preconditioned`](super::FusedCgStep) recurrence.
    Fused,
    /// One nonblocking batched reduction per iteration, posted before the
    /// preconditioner applies and SpMM it overlaps — the batched
    /// [`PipelinedCgStep::preconditioned`](super::PipelinedCgStep)
    /// recurrence (Ghysels & Vanroose).
    Pipelined,
}

/// Result of one block solve: the final block iterate plus per-column
/// convergence data.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    /// Final block iterate (all `k` columns).
    pub x: DistMultiVector,
    /// Iterations the solve performed (the batch advances in lockstep).
    pub iterations: usize,
    /// Iteration at which each column froze (converged or broke down);
    /// columns still active at the end report the total iteration count.
    pub column_iterations: Vec<usize>,
    /// Final relative residual of each column (recurrence estimate).
    pub relative_residuals: Vec<f64>,
    /// Did each column meet the tolerance?
    pub converged: Vec<bool>,
    /// Why the solve as a whole stopped.
    pub reason: StopReason,
    /// Per-column relative-residual history (entries stop at the freeze).
    pub histories: Vec<Vec<f64>>,
}

impl BlockOutcome {
    /// Convert into the distributed solvers' public block outcome type.
    pub fn into_block_solve_outcome(self) -> crate::rbsp::BlockSolveOutcome {
        crate::rbsp::BlockSolveOutcome {
            x: self.x,
            iterations: self.iterations,
            column_iterations: self.column_iterations,
            relative_residuals: self.relative_residuals,
            converged: self.converged,
            histories: self.histories,
        }
    }
}

/// What one block iteration decided (internal; the shell maps it to the
/// same arms as the single-RHS kernel).
enum BlockStep {
    Continue,
    /// Every column is frozen: Converged if all met the tolerance,
    /// Breakdown otherwise.
    AllFrozen,
    /// A still-active column produced a non-finite residual (pipelined
    /// mode, mirroring the single-RHS `Diverged` return).
    Diverged,
    Detected(DetectionResponse),
}

/// Per-column solve status. Columns never unfreeze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    Active,
    Converged,
    /// The column's recurrence broke down (`p·Ap ≤ 0`, non-finite α);
    /// frozen with `converged = false`.
    Broken,
}

/// The recurrence vectors and scalars of one block solve. Fused mode uses
/// `r`, `z = M⁻¹r`, `p` and the per-column `rz`/`rr`; pipelined mode
/// additionally maintains `u = M⁻¹r`, `w = A·u`, `mw = M⁻¹w`, `q = M⁻¹s`
/// and `s` (tracking `A·p`), with `z` tracking the `A·(M⁻¹s)` chain.
struct BlockState {
    r: DistMultiVector,
    z: DistMultiVector,
    p: DistMultiVector,
    u: Option<DistMultiVector>,
    w: Option<DistMultiVector>,
    mw: Option<DistMultiVector>,
    q: Option<DistMultiVector>,
    s: Option<DistMultiVector>,
    /// `r·z` per column (fused mode) — drives α and β.
    rz: Vec<f64>,
    /// `r·r` per column (fused mode) — drives the convergence test.
    rr: Vec<f64>,
    gamma_old: Vec<f64>,
    alpha_old: Vec<f64>,
    /// True until the first completed step after a (re-)initialization:
    /// every column takes the β = 0 branch again after a rebuild.
    fresh: bool,
}

/// A zero multi-vector with the shape and distribution of `proto`.
fn zeroed(proto: &DistMultiVector) -> DistMultiVector {
    let mut z = proto.clone();
    z.local.iter_mut().for_each(|v| *v = 0.0);
    z
}

/// The block analogue of the kernel's `CgProbe`: evaluates the true
/// residual of the guard column (column 0) of the current block iterate.
struct BlockProbe<'g> {
    b: &'g DistVector,
    x: &'g DistVector,
    bn: f64,
    iteration: usize,
}

impl<'g, 'a, 'b, C: CommBackend> SolutionProbe<DistSpace<'a, 'b, C>> for BlockProbe<'g> {
    fn local_len(&self, space: &DistSpace<'a, 'b, C>) -> usize {
        space.local_len(self.x)
    }

    fn iterate(&self) -> &DistVector {
        self.x
    }

    fn iterate_step(&self) -> usize {
        self.iteration
    }

    fn trial_true_relres(&mut self, space: &mut DistSpace<'a, 'b, C>) -> Result<f64> {
        let ax = space.apply(self.x)?;
        let r = space.residual(self.b, &ax);
        let rn = space.norm(&r)?;
        Ok(rn / self.bn)
    }
}

/// The driver: the space, the preconditioner, per-column bookkeeping and
/// every reusable scratch buffer of the solve (guards, preconditioner
/// single-vector views, reduction partials, per-column coefficient
/// arrays). The recurrence vectors live in [`BlockState`] so the borrow
/// checker can split them from the driver.
struct BlockCg<'s, 'a, 'b, 'm, C: CommBackend> {
    space: &'s mut DistSpace<'a, 'b, C>,
    m: &'m mut dyn SpacePreconditioner<DistSpace<'a, 'b, C>>,
    k: usize,
    /// ‖b_c‖ per column, floored at `f64::MIN_POSITIVE`.
    bn: Vec<f64>,
    lanes: Vec<Lane>,
    relres: Vec<f64>,
    col_iters: Vec<usize>,
    histories: Vec<Vec<f64>>,
    /// Local-partials buffer handed to the batched reductions.
    partials: Vec<f64>,
    alphas: Vec<f64>,
    neg_alphas: Vec<f64>,
    betas: Vec<f64>,
    /// Preconditioner single-vector views: `rc` in, `zc` out.
    rc: DistVector,
    zc: DistVector,
    /// Guard views of column 0 for the policy hooks (SpMV input/product).
    in_g: DistVector,
    out_g: DistVector,
    /// Guard views of column 0 of `x` and `b` for probes and recovery.
    xg: DistVector,
    bg: DistVector,
}

impl<'s, 'a, 'b, 'm, C: CommBackend> BlockCg<'s, 'a, 'b, 'm, C> {
    fn active_count(&self) -> usize {
        self.lanes.iter().filter(|&&l| l == Lane::Active).count()
    }

    fn freeze(&mut self, c: usize, to: Lane, at_iter: usize) {
        self.lanes[c] = to;
        self.col_iters[c] = at_iter;
    }

    /// Worst relative residual over the active columns (over all columns
    /// once everything froze) — the scalar the hook context reports. At
    /// `k = 1` this is exactly the single column's residual, NaN included.
    fn worst_relres(&self) -> f64 {
        let mut worst = f64::NEG_INFINITY;
        let mut any = false;
        for c in 0..self.k {
            if self.lanes[c] == Lane::Active {
                any = true;
                if self.relres[c].is_nan() {
                    return f64::NAN;
                }
                worst = worst.max(self.relres[c]);
            }
        }
        if !any {
            worst = self.relres.iter().fold(f64::NEG_INFINITY, |a, &v| a.max(v));
        }
        worst
    }

    /// The stop reason once every column is frozen.
    fn frozen_reason(&self) -> StopReason {
        if self.lanes.iter().all(|&l| l == Lane::Converged) {
            StopReason::Converged
        } else {
            StopReason::Breakdown
        }
    }

    /// `z[c] ← M⁻¹·r[c]` for every **active** column, through the
    /// single-vector scratch views (each apply charges exactly like the
    /// single-RHS preconditioner path; frozen columns skip theirs).
    fn precond_active_into(&mut self, r: &DistMultiVector, z: &mut DistMultiVector) -> Result<()> {
        for c in 0..self.k {
            if self.lanes[c] != Lane::Active {
                continue;
            }
            self.rc.local.copy_from_slice(r.col(c));
            self.m.apply_into(self.space, &self.rc, &mut self.zc)?;
            z.col_mut(c).copy_from_slice(&self.zc.local);
        }
        Ok(())
    }

    /// (Re)build the recurrence from the current iterate — the block twin
    /// of the shell's `apply + residual + strategy.init` sequence. Frozen
    /// columns get consistent residuals recomputed (they sit in reduction
    /// payloads) but skip preconditioner applies and stay frozen.
    fn build_state(
        &mut self,
        mode: BlockCgMode,
        st: &mut SolveProgress,
        x: &DistMultiVector,
        b: &DistMultiVector,
    ) -> Result<BlockState> {
        let k = self.k;
        let active = self.active_count();
        let ax = self.space.apply_block(x, active)?;
        let mut r = b.clone();
        for c in 0..k {
            self.space.axpy_col(-1.0, &ax, &mut r, c);
        }
        match mode {
            BlockCgMode::Fused => {
                let mut z = zeroed(b);
                self.precond_active_into(&r, &mut z)?;
                // One batched reduction for every column's r·z and r·r —
                // the same single collective as the single-RHS init.
                let vals = self.space.block_dots(
                    k,
                    &[(&r, &z), (&r, &r)],
                    &[],
                    active,
                    &mut self.partials,
                )?;
                let rz = vals[..k].to_vec();
                let rr = vals[k..2 * k].to_vec();
                let p = z.clone();
                for (c, &rr_c) in rr.iter().enumerate() {
                    if self.lanes[c] == Lane::Active {
                        self.relres[c] = rr_c.sqrt() / self.bn[c];
                        self.histories[c].push(self.relres[c]);
                    }
                }
                st.relres = self.worst_relres();
                Ok(BlockState {
                    r,
                    z,
                    p,
                    u: None,
                    w: None,
                    mw: None,
                    q: None,
                    s: None,
                    rz,
                    rr,
                    gamma_old: vec![0.0; k],
                    alpha_old: vec![0.0; k],
                    fresh: true,
                })
            }
            BlockCgMode::Pipelined => {
                let mut u = zeroed(b);
                self.precond_active_into(&r, &mut u)?;
                let w = self.space.apply_block(&u, active)?;
                let zeros = zeroed(b);
                for c in 0..k {
                    if self.lanes[c] == Lane::Active {
                        self.relres[c] = f64::INFINITY;
                    }
                }
                st.relres = self.worst_relres();
                Ok(BlockState {
                    r,
                    z: zeros.clone(),
                    p: zeros.clone(),
                    u: Some(u),
                    w: Some(w),
                    mw: Some(zeros.clone()),
                    q: Some(zeros),
                    s: Some(zeroed(b)),
                    rz: Vec::new(),
                    rr: Vec::new(),
                    gamma_old: vec![0.0; k],
                    alpha_old: vec![0.0; k],
                    fresh: true,
                })
            }
        }
    }

    /// One fused-mode iteration: batched reduction #1 carries every
    /// column's `p·Ap` plus the policy check tail, batched reduction #2
    /// every column's `r·z` and `r·r` — two collectives regardless of `k`.
    fn step_fused(
        &mut self,
        st: &mut SolveProgress,
        state: &mut BlockState,
        x: &mut DistMultiVector,
        policies: &mut PolicyStack<'_, DistSpace<'a, 'b, C>>,
    ) -> Result<BlockStep> {
        let k = self.k;
        // Convergence is evaluated at the top of the loop from the
        // previous iteration's reduction, per column.
        for c in 0..k {
            if self.lanes[c] == Lane::Active {
                self.relres[c] = state.rr[c].sqrt() / self.bn[c];
                if self.relres[c] <= st.tol {
                    self.freeze(c, Lane::Converged, st.iterations);
                }
            }
        }
        st.relres = self.worst_relres();
        let active = self.active_count();
        if active == 0 {
            return Ok(BlockStep::AllFrozen);
        }
        self.space.advance_extra_work()?;
        self.in_g.local.copy_from_slice(state.p.col(0));
        match policies.before_spmv(self.space, &st.ctx(), &self.in_g)? {
            StackOutcome::Act(resp) => return Ok(BlockStep::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let ap = self.space.apply_block(&state.p, active)?;
        self.out_g.local.copy_from_slice(ap.col(0));
        // Batched reduction #1, always fused: [p·Ap per column] + the
        // policy check tail in one collective.
        let vals = {
            let avail = CheckVectors {
                spmv_input: Some(&self.in_g),
                spmv_product: Some(&self.out_g),
                basis_pair: None,
            };
            let mut check_pairs: Vec<(&DistVector, &DistVector)> = Vec::new();
            let batch =
                policies.collect_check_dots(self.space, &st.ctx(), &avail, &mut check_pairs);
            let vals = self.space.block_dots(
                k,
                &[(&state.p, &ap)],
                &check_pairs,
                active,
                &mut self.partials,
            )?;
            drop(check_pairs);
            policies.consume_check_dots(&st.ctx(), &batch, &vals[k..]);
            vals
        };
        match policies.after_spmv(self.space, &st.ctx(), &self.in_g, &self.out_g)? {
            StackOutcome::Act(resp) => return Ok(BlockStep::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        // α per column; a non-positive or non-finite p·Ap freezes the
        // column (the masked form of the k = 1 whole-solve Breakdown).
        for (c, &pap) in vals.iter().enumerate().take(k) {
            if self.lanes[c] != Lane::Active {
                continue;
            }
            if pap <= 0.0 || !pap.is_finite() {
                self.freeze(c, Lane::Broken, st.iterations);
            } else {
                self.alphas[c] = state.rz[c] / pap;
            }
        }
        let active = self.active_count();
        if active == 0 {
            // Every remaining column broke before the update: stop without
            // touching x or the counters, like the single-RHS step.
            return Ok(BlockStep::AllFrozen);
        }
        let n = state.r.local_rows();
        if active == k {
            // No column frozen yet: one blocked pass per update.
            for c in 0..k {
                self.neg_alphas[c] = -self.alphas[c];
            }
            self.space.axpy_block(&self.alphas, &state.p, x);
            self.space.axpy_block(&self.neg_alphas, &ap, &mut state.r);
        } else {
            for c in 0..k {
                if self.lanes[c] != Lane::Active {
                    continue;
                }
                self.space.axpy_col(self.alphas[c], &state.p, x, c);
                self.space.axpy_col(-self.alphas[c], &ap, &mut state.r, c);
            }
        }
        self.space.charge_flops(4 * n * active);
        // Batched reduction #2: z ← M⁻¹r on the active columns, then every
        // column's r·z and r·r in one collective.
        self.precond_active_into(&state.r, &mut state.z)?;
        let vals2 = self.space.block_dots(
            k,
            &[(&state.r, &state.z), (&state.r, &state.r)],
            &[],
            active,
            &mut self.partials,
        )?;
        for c in 0..k {
            if self.lanes[c] != Lane::Active {
                continue;
            }
            let rz_new = vals2[c];
            self.betas[c] = rz_new / state.rz[c];
            state.rz[c] = rz_new;
            state.rr[c] = vals2[k + c];
        }
        if active == k {
            self.space.xpby_block(&state.z, &self.betas, &mut state.p);
        } else {
            for c in 0..k {
                if self.lanes[c] != Lane::Active {
                    continue;
                }
                self.space
                    .xpby_col(&state.z, self.betas[c], &mut state.p, c);
            }
        }
        self.space.charge_flops(2 * n * active);
        st.iterations += 1;
        for c in 0..k {
            if self.lanes[c] != Lane::Active {
                continue;
            }
            self.relres[c] = state.rr[c].sqrt() / self.bn[c];
            self.histories[c].push(self.relres[c]);
        }
        st.relres = self.worst_relres();
        self.xg.local.copy_from_slice(x.col(0));
        let mut probe = BlockProbe {
            b: &self.bg,
            x: &self.xg,
            bn: self.bn[0],
            iteration: st.iterations,
        };
        match policies.on_iteration(self.space, &st.ctx(), &mut probe)? {
            StackOutcome::Act(resp) => return Ok(BlockStep::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        Ok(BlockStep::Continue)
    }

    /// One pipelined-mode iteration: a single nonblocking batched
    /// reduction — [γ per column, δ per column, ‖r‖² per column] + the
    /// check tail — posted before the preconditioner applies and the SpMM
    /// it overlaps.
    fn step_pipelined(
        &mut self,
        st: &mut SolveProgress,
        state: &mut BlockState,
        x: &mut DistMultiVector,
        policies: &mut PolicyStack<'_, DistSpace<'a, 'b, C>>,
    ) -> Result<BlockStep> {
        let k = self.k;
        let active = self.active_count();
        let (pending, batch) = {
            let r = &state.r;
            let u = state.u.as_ref().expect("pipelined state");
            let w = state.w.as_ref().expect("pipelined state");
            // The resolved input/product pair lags the overlapped SpMV by
            // one step, exactly like the single-RHS pipelined strategy.
            self.in_g.local.copy_from_slice(u.col(0));
            self.out_g.local.copy_from_slice(w.col(0));
            let avail = CheckVectors {
                spmv_input: Some(&self.in_g),
                spmv_product: Some(&self.out_g),
                basis_pair: None,
            };
            let mut check_pairs: Vec<(&DistVector, &DistVector)> = Vec::new();
            let batch =
                policies.collect_check_dots(self.space, &st.ctx(), &avail, &mut check_pairs);
            let pending = self.space.start_block_dots(
                k,
                &[(r, u), (w, u), (r, r)],
                &check_pairs,
                active,
                &mut self.partials,
            )?;
            (pending, batch)
        };
        // ... overlapped with the extra work, the per-active-column
        // preconditioner applies mw = M⁻¹w and the blocked SpMM.
        self.space.advance_extra_work()?;
        {
            let w = state.w.as_ref().expect("pipelined state");
            let mw = state.mw.as_mut().expect("pipelined state");
            for c in 0..self.k {
                if self.lanes[c] != Lane::Active {
                    continue;
                }
                self.rc.local.copy_from_slice(w.col(c));
                self.m.apply_into(self.space, &self.rc, &mut self.zc)?;
                mw.col_mut(c).copy_from_slice(&self.zc.local);
            }
        }
        let aw = {
            let mw = state.mw.as_ref().expect("pipelined state");
            self.in_g.local.copy_from_slice(mw.col(0));
            match policies.before_spmv(self.space, &st.ctx(), &self.in_g)? {
                StackOutcome::Act(resp) => {
                    // Complete the posted reduction before abandoning the
                    // step: every rank drains the in-flight collective.
                    self.space.finish_dots(pending)?;
                    return Ok(BlockStep::Detected(resp));
                }
                StackOutcome::Recorded | StackOutcome::Continue => {}
            }
            self.space.apply_block(mw, active)?
        };
        let reduced = self.space.finish_dots(pending)?;
        policies.consume_check_dots(&st.ctx(), &batch, &reduced[3 * k..]);
        self.out_g.local.copy_from_slice(aw.col(0));
        match policies.after_spmv(self.space, &st.ctx(), &self.in_g, &self.out_g)? {
            StackOutcome::Act(resp) => return Ok(BlockStep::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        // Convergence per column from the one reduction (history gets its
        // first entry here, like the single-RHS pipelined step).
        for c in 0..k {
            if self.lanes[c] != Lane::Active {
                continue;
            }
            let rr = reduced[2 * k + c];
            self.relres[c] = rr.max(0.0).sqrt() / self.bn[c];
            if self.histories[c].is_empty() {
                self.histories[c].push(self.relres[c]);
            }
            if self.relres[c] <= st.tol {
                self.freeze(c, Lane::Converged, st.iterations);
            }
        }
        st.relres = self.worst_relres();
        for c in 0..k {
            if self.lanes[c] == Lane::Active && !self.relres[c].is_finite() {
                // A non-finite residual on a live column is whole-solve
                // divergence, consulted by the shell's recovery arm.
                return Ok(BlockStep::Diverged);
            }
        }
        if self.active_count() == 0 {
            return Ok(BlockStep::AllFrozen);
        }
        // β, α per column; a non-finite or zero α freezes the column.
        for c in 0..k {
            if self.lanes[c] != Lane::Active {
                continue;
            }
            let gamma = reduced[c];
            let delta = reduced[k + c];
            let (alpha, beta);
            if !state.fresh {
                beta = gamma / state.gamma_old[c];
                alpha = gamma / (delta - beta * gamma / state.alpha_old[c]);
            } else {
                beta = 0.0;
                alpha = gamma / delta;
            }
            if !alpha.is_finite() || alpha == 0.0 {
                self.freeze(c, Lane::Broken, st.iterations);
            } else {
                self.alphas[c] = alpha;
                self.betas[c] = beta;
            }
        }
        let active = self.active_count();
        if active == 0 {
            return Ok(BlockStep::AllFrozen);
        }
        // Recurrence updates in the single-RHS order per column:
        // z ← aw + βz, q ← mw + βq, s ← w + βs, p ← u + βp,
        // x += αp, r −= αs, u −= αq, w −= αz.
        {
            let u = state.u.as_mut().expect("pipelined state");
            let w = state.w.as_mut().expect("pipelined state");
            let mw = state.mw.as_ref().expect("pipelined state");
            let q = state.q.as_mut().expect("pipelined state");
            let s = state.s.as_mut().expect("pipelined state");
            if active == k {
                for c in 0..k {
                    self.neg_alphas[c] = -self.alphas[c];
                }
                self.space.xpby_block(&aw, &self.betas, &mut state.z);
                self.space.xpby_block(mw, &self.betas, q);
                self.space.xpby_block(w, &self.betas, s);
                self.space.xpby_block(u, &self.betas, &mut state.p);
                self.space.axpy_block(&self.alphas, &state.p, x);
                self.space.axpy_block(&self.neg_alphas, s, &mut state.r);
                self.space.axpy_block(&self.neg_alphas, q, u);
                self.space.axpy_block(&self.neg_alphas, &state.z, w);
            } else {
                for c in 0..k {
                    if self.lanes[c] != Lane::Active {
                        continue;
                    }
                    let (a, bta) = (self.alphas[c], self.betas[c]);
                    self.space.xpby_col(&aw, bta, &mut state.z, c);
                    self.space.xpby_col(mw, bta, q, c);
                    self.space.xpby_col(w, bta, s, c);
                    self.space.xpby_col(u, bta, &mut state.p, c);
                    self.space.axpy_col(a, &state.p, x, c);
                    self.space.axpy_col(-a, s, &mut state.r, c);
                    self.space.axpy_col(-a, q, u, c);
                    self.space.axpy_col(-a, &state.z, w, c);
                }
            }
        }
        let n = state.r.local_rows();
        self.space.charge_flops(16 * n * active);
        for (c, &gamma) in reduced.iter().enumerate().take(k) {
            if self.lanes[c] != Lane::Active {
                continue;
            }
            state.gamma_old[c] = gamma;
            state.alpha_old[c] = self.alphas[c];
        }
        state.fresh = false;
        st.iterations += 1;
        for c in 0..k {
            if self.lanes[c] == Lane::Active {
                self.histories[c].push(self.relres[c]);
            }
        }
        self.xg.local.copy_from_slice(x.col(0));
        let mut probe = BlockProbe {
            b: &self.bg,
            x: &self.xg,
            bn: self.bn[0],
            iteration: st.iterations,
        };
        match policies.on_iteration(self.space, &st.ctx(), &mut probe)? {
            StackOutcome::Act(resp) => return Ok(BlockStep::Detected(resp)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        Ok(BlockStep::Continue)
    }
}

/// Run the block preconditioned-CG kernel on `k = b.k()` right-hand sides
/// at once. At `k = 1` the solve is bit-identical to
/// [`run_cg`](super::run_cg) with the corresponding preconditioned
/// strategy; at any `k` the collective count per iteration is that of the
/// single-RHS solve. See the [module docs](self) for the masking,
/// symmetry and policy-guard contracts.
pub fn run_block_cg<'a, 'b, C: CommBackend>(
    space: &mut DistSpace<'a, 'b, C>,
    b: &DistMultiVector,
    x0: Option<DistMultiVector>,
    opts: &SolveOptions,
    mode: BlockCgMode,
    m: &mut dyn SpacePreconditioner<DistSpace<'a, 'b, C>>,
    policies: &mut PolicyStack<'_, DistSpace<'a, 'b, C>>,
) -> Result<(BlockOutcome, KernelReport)> {
    let k = b.k();
    assert!(k > 0, "run_block_cg: empty right-hand-side block");
    let mut x = x0.unwrap_or_else(|| zeroed(b));
    assert_eq!(x.k(), k, "run_block_cg: x0 and b column counts differ");
    assert_eq!(
        x.local_rows(),
        b.local_rows(),
        "run_block_cg: x0 and b distributions differ"
    );
    let mut drv = BlockCg {
        space,
        m,
        k,
        bn: Vec::new(),
        lanes: vec![Lane::Active; k],
        relres: vec![f64::INFINITY; k],
        col_iters: vec![0; k],
        histories: vec![Vec::new(); k],
        partials: Vec::new(),
        alphas: vec![0.0; k],
        neg_alphas: vec![0.0; k],
        betas: vec![0.0; k],
        rc: b.column(0),
        zc: b.column(0),
        in_g: b.column(0),
        out_g: b.column(0),
        xg: b.column(0),
        bg: b.column(0),
    };
    // ‖b_c‖ for every column in one collective (k = 1: bitwise the
    // single-RHS `space.norm(b)`), floored exactly like the shell's bn.
    let bnv = drv
        .space
        .block_dots(k, &[(b, b)], &[], k, &mut drv.partials)?;
    drv.bn = bnv
        .iter()
        .map(|&v| v.max(0.0).sqrt().max(f64::MIN_POSITIVE))
        .collect();
    let mut st = SolveProgress::new(opts.tol, opts.max_iters, drv.bn[0]);
    let mut report = KernelReport::default();
    policies.on_solve_start(drv.space, &drv.bg)?;

    let mut state = drv.build_state(mode, &mut st, &x, b)?;
    drv.xg.local.copy_from_slice(x.col(0));
    policies.on_cycle_start(drv.space, &st.ctx(), &drv.xg)?;

    let mut reason = StopReason::MaxIterations;
    // Fused init computed per-column residuals; freeze columns already at
    // the tolerance (the shell's pre-loop convergence check).
    for c in 0..k {
        if drv.lanes[c] == Lane::Active && drv.relres[c] <= opts.tol {
            drv.freeze(c, Lane::Converged, st.iterations);
        }
    }
    if drv.active_count() == 0 {
        reason = drv.frozen_reason();
    } else {
        while st.iterations < opts.max_iters {
            let out = match mode {
                BlockCgMode::Fused => drv.step_fused(&mut st, &mut state, &mut x, policies)?,
                BlockCgMode::Pipelined => {
                    drv.step_pipelined(&mut st, &mut state, &mut x, policies)?
                }
            };
            match out {
                BlockStep::Continue => {}
                BlockStep::AllFrozen => {
                    reason = drv.frozen_reason();
                    break;
                }
                BlockStep::Diverged => {
                    // Consult the stack before terminating; recovery
                    // restores through the column-0 guard and rebuilds the
                    // whole recurrence, capped like the single-RHS shell.
                    let recover = report.failure_recoveries < opts.max_iters.max(1) && {
                        drv.xg.local.copy_from_slice(x.col(0));
                        let restart =
                            policies.on_failure(&st.ctx(), FailureEvent::Divergence, &mut drv.xg)
                                == RecoveryAction::Restart;
                        if restart {
                            x.col_mut(0).copy_from_slice(&drv.xg.local);
                        }
                        restart
                    };
                    if recover {
                        report.failure_recoveries += 1;
                        state = drv.build_state(mode, &mut st, &x, b)?;
                        drv.xg.local.copy_from_slice(x.col(0));
                        policies.on_cycle_start(drv.space, &st.ctx(), &drv.xg)?;
                        for c in 0..k {
                            if drv.lanes[c] == Lane::Active && drv.relres[c] <= opts.tol {
                                drv.freeze(c, Lane::Converged, st.iterations);
                            }
                        }
                        if drv.active_count() == 0 {
                            reason = drv.frozen_reason();
                            break;
                        }
                        continue;
                    }
                    reason = StopReason::Diverged;
                    break;
                }
                BlockStep::Detected(DetectionResponse::Restart) => {
                    report.policy_restarts += 1;
                    if report.policy_restarts > opts.max_iters.max(1) {
                        // Persistent corruption rebuilding forever without
                        // consuming iterations is terminal (the backstop).
                        reason = StopReason::CorruptionDetected;
                        break;
                    }
                    state = drv.build_state(mode, &mut st, &x, b)?;
                    drv.xg.local.copy_from_slice(x.col(0));
                    policies.on_cycle_start(drv.space, &st.ctx(), &drv.xg)?;
                    for c in 0..k {
                        if drv.lanes[c] == Lane::Active && drv.relres[c] <= opts.tol {
                            drv.freeze(c, Lane::Converged, st.iterations);
                        }
                    }
                    if drv.active_count() == 0 {
                        reason = drv.frozen_reason();
                        break;
                    }
                }
                BlockStep::Detected(_) => {
                    reason = StopReason::CorruptionDetected;
                    break;
                }
            }
        }
    }

    report.policy_overhead = policies.overhead_report();
    for c in 0..k {
        if drv.lanes[c] == Lane::Active {
            drv.col_iters[c] = st.iterations;
        }
    }
    // Per-column convergence mirrors `into_dist_outcome`: the final
    // residual against the tolerance, whatever the stop reason.
    let converged: Vec<bool> = (0..k).map(|c| drv.relres[c] <= opts.tol).collect();
    Ok((
        BlockOutcome {
            x,
            iterations: st.iterations,
            column_iterations: drv.col_iters,
            relative_residuals: drv.relres,
            converged,
            reason,
            histories: drv.histories,
        },
        report,
    ))
}
