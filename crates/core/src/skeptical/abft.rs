//! Instrumented ABFT kernels (E2): checksummed GEMM and SpMV with injection
//! hooks and detection/correction bookkeeping, layered on the Huang–Abraham
//! encodings in `resilient-linalg`.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use resilient_faults::bitflip::flip_bit_f64;
use resilient_linalg::checksum::{checksummed_gemm, ChecksumVerdict, ChecksummedCsr};
use resilient_linalg::{CsrMatrix, DenseMatrix};

/// Outcome of one ABFT-protected kernel execution under injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbftOutcome {
    /// No fault was injected and none was reported.
    CleanPass,
    /// A fault was injected, detected and corrected; the result matches the
    /// clean result.
    Corrected,
    /// A fault was injected and detected but could not be corrected.
    DetectedOnly,
    /// A fault was injected and the checksums did not notice.
    Missed,
    /// No fault was injected but the checksums fired (false positive).
    FalsePositive,
}

/// Aggregate ABFT campaign counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbftStats {
    /// Trials executed.
    pub trials: usize,
    /// Per-outcome counts.
    pub clean_pass: usize,
    /// Corrected faults.
    pub corrected: usize,
    /// Detected-but-uncorrected faults.
    pub detected_only: usize,
    /// Missed faults.
    pub missed: usize,
    /// False positives.
    pub false_positives: usize,
}

impl AbftStats {
    /// Record one outcome.
    pub fn record(&mut self, outcome: AbftOutcome) {
        self.trials += 1;
        match outcome {
            AbftOutcome::CleanPass => self.clean_pass += 1,
            AbftOutcome::Corrected => self.corrected += 1,
            AbftOutcome::DetectedOnly => self.detected_only += 1,
            AbftOutcome::Missed => self.missed += 1,
            AbftOutcome::FalsePositive => self.false_positives += 1,
        }
    }

    /// Detection rate among trials that actually had a fault injected.
    pub fn detection_rate(&self) -> f64 {
        let faulted = self.corrected + self.detected_only + self.missed;
        if faulted == 0 {
            1.0
        } else {
            (self.corrected + self.detected_only) as f64 / faulted as f64
        }
    }
}

/// Run one ABFT GEMM trial: compute the checksummed product `A·B`, then (if
/// `inject` is true) flip the given bit of a random product element, verify,
/// and attempt correction.
pub fn abft_gemm_trial(
    a: &DenseMatrix,
    b: &DenseMatrix,
    inject: bool,
    bit: u32,
    tol: f64,
    seed: u64,
) -> AbftOutcome {
    let clean = a.gemm(b);
    let mut protected = checksummed_gemm(a, b);
    if inject {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let i = rng.gen_range(0..protected.data.nrows());
        let j = rng.gen_range(0..protected.data.ncols());
        let old = protected.data.get(i, j);
        protected.data.set(i, j, flip_bit_f64(old, bit));
        let changed = protected.data.get(i, j).to_bits() != old.to_bits();
        match protected.verify(tol) {
            ChecksumVerdict::Clean => {
                // Either the flip did not change the value, or it is below
                // the detection threshold; both count as a miss only if the
                // result is actually wrong beyond tolerance.
                if !changed
                    || protected.data.sub(&clean).norm_max() <= tol * clean.norm_max().max(1.0)
                {
                    AbftOutcome::CleanPass
                } else {
                    AbftOutcome::Missed
                }
            }
            ChecksumVerdict::SingleError { .. } => {
                if protected.correct(tol)
                    && protected.data.sub(&clean).norm_max() <= 1e-6 * clean.norm_max().max(1.0)
                {
                    AbftOutcome::Corrected
                } else {
                    AbftOutcome::DetectedOnly
                }
            }
            ChecksumVerdict::MultipleErrors { .. } => AbftOutcome::DetectedOnly,
        }
    } else {
        match protected.verify(tol) {
            ChecksumVerdict::Clean => AbftOutcome::CleanPass,
            _ => AbftOutcome::FalsePositive,
        }
    }
}

/// Run one ABFT SpMV trial: compute `y = A·x` through the checksummed CSR,
/// optionally flip one bit of a random element of `y`, and verify.
pub fn abft_spmv_trial(
    encoded: &ChecksummedCsr,
    x: &[f64],
    inject: bool,
    bit: u32,
    tol: f64,
    seed: u64,
) -> AbftOutcome {
    let clean = encoded.matrix.spmv(x);
    let mut y = clean.clone();
    if inject {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let i = rng.gen_range(0..y.len());
        y[i] = flip_bit_f64(y[i], bit);
        let harmful =
            (y[i] - clean[i]).abs() > tol * clean.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let detected = !encoded.verify_product(x, &y, tol);
        match (detected, harmful) {
            (true, _) => AbftOutcome::DetectedOnly,
            (false, false) => AbftOutcome::CleanPass,
            (false, true) => AbftOutcome::Missed,
        }
    } else if encoded.verify_product(x, &y, tol) {
        AbftOutcome::CleanPass
    } else {
        AbftOutcome::FalsePositive
    }
}

/// Convenience: encode a CSR matrix for ABFT SpMV.
pub fn encode_spmv(a: &CsrMatrix) -> ChecksummedCsr {
    ChecksummedCsr::encode(a.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::poisson2d;

    #[test]
    fn clean_gemm_has_no_false_positives() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = DenseMatrix::random(12, 12, &mut rng);
        let b = DenseMatrix::random(12, 12, &mut rng);
        let mut stats = AbftStats::default();
        for s in 0..20 {
            stats.record(abft_gemm_trial(&a, &b, false, 0, 1e-10, s));
        }
        assert_eq!(stats.false_positives, 0);
        assert_eq!(stats.clean_pass, 20);
        assert_eq!(stats.detection_rate(), 1.0);
    }

    #[test]
    fn high_bit_gemm_corruption_is_corrected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = DenseMatrix::random(10, 10, &mut rng);
        let b = DenseMatrix::random(10, 10, &mut rng);
        let mut stats = AbftStats::default();
        for s in 0..30 {
            stats.record(abft_gemm_trial(&a, &b, true, 55, 1e-10, s));
        }
        assert_eq!(
            stats.missed, 0,
            "a 2^3-scale relative error must never be missed"
        );
        assert!(
            stats.corrected >= 25,
            "most single errors must be corrected: {stats:?}"
        );
    }

    #[test]
    fn low_bit_gemm_corruption_is_benign() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = DenseMatrix::random(8, 8, &mut rng);
        let b = DenseMatrix::random(8, 8, &mut rng);
        let mut stats = AbftStats::default();
        for s in 0..20 {
            stats.record(abft_gemm_trial(&a, &b, true, 1, 1e-10, s));
        }
        // Bit 1 of the mantissa moves the value by ~1e-16 relative: either it
        // is (harmlessly) below the threshold or it is detected; it must never
        // be a harmful miss.
        assert_eq!(stats.missed, 0);
    }

    #[test]
    fn spmv_detects_severe_flips() {
        let a = poisson2d(8, 8);
        let encoded = encode_spmv(&a);
        let x: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut stats = AbftStats::default();
        for s in 0..30 {
            stats.record(abft_spmv_trial(&encoded, &x, true, 60, 1e-9, s));
        }
        assert_eq!(
            stats.missed, 0,
            "exponent-bit flips must be detected: {stats:?}"
        );
        let mut clean_stats = AbftStats::default();
        for s in 0..10 {
            clean_stats.record(abft_spmv_trial(&encoded, &x, false, 0, 1e-9, s));
        }
        assert_eq!(clean_stats.false_positives, 0);
    }
}
