//! Algorithm-diversity voting: run several *different* solver
//! compositions on the same system and let them check each other.
//!
//! Every detection policy in the suite watches one algorithm from the
//! inside. Diversity voting is the complementary, algorithm-agnostic
//! detector the fault-tolerance literature calls N-version computation:
//! run N diverse members (different dot schedules, methods and
//! preconditioning — so a fault that silently biases one recurrence is
//! unlikely to bias the others the same way), cluster the solutions they
//! claim, and certify the majority cluster. A member whose claimed
//! solution sits outside the majority is *outvoted* — flagged as a
//! detection without any knowledge of what went wrong inside it.
//!
//! The voter runs inside one SPMD closure on one communicator: members
//! execute sequentially (identical ranks run identical member sequences,
//! so collective symmetry holds), solutions are gathered globally, and
//! clustering happens on the gathered — deterministic, rank-identical —
//! vectors, so every rank reaches the same verdict without an extra
//! collective.

use resilient_faults::campaign::StrikePlan;
use resilient_linalg::CsrMatrix;
use resilient_runtime::{CommBackend, Result};

use crate::campaign::{run_kernel_preset, CampaignPreset};
use crate::distributed::{DistCsr, DistVector};
use crate::rbsp::DistSolveOptions;
use crate::solvers::common::StopReason;

/// One voting member: a kernel preset plus (for campaign experiments) the
/// strike plans poisoning exactly this member's run.
#[derive(Debug, Clone)]
pub struct DiversityMember {
    /// The composition this member runs.
    pub preset: CampaignPreset,
    /// Strikes against this member's SpMV path.
    pub spmv_plan: Option<StrikePlan>,
    /// Strikes against this member's preconditioner path.
    pub precond_plan: Option<StrikePlan>,
    /// Stack a [`PrecondGuardPolicy`](crate::kernel::PrecondGuardPolicy)
    /// on this member.
    pub guard: bool,
}

impl DiversityMember {
    /// A healthy member running `preset`.
    pub fn clean(preset: CampaignPreset) -> Self {
        Self {
            preset,
            spmv_plan: None,
            precond_plan: None,
            guard: false,
        }
    }

    /// A member whose SpMV path is poisoned by `plan` — the adversarial
    /// minority the vote must outvote.
    pub fn poisoned(preset: CampaignPreset, plan: StrikePlan) -> Self {
        Self {
            preset,
            spmv_plan: Some(plan),
            precond_plan: None,
            guard: false,
        }
    }
}

/// What the vote concluded.
#[derive(Debug, Clone)]
pub struct DiversityReport {
    /// Members that ran.
    pub members: usize,
    /// Per member: did it *claim* convergence? (Only claimants vote —
    /// an honest failure is not a disagreement.)
    pub claimed: Vec<bool>,
    /// Per member: its independently verified true relative residual.
    pub true_relres: Vec<f64>,
    /// Clusters of claimant indices whose solutions pairwise agree with
    /// the cluster representative within the agreement tolerance.
    pub clusters: Vec<Vec<usize>>,
    /// Index into `clusters` of the strict-majority cluster (more than
    /// half of *all* members), if one exists.
    pub majority: Option<usize>,
    /// Claimant members outside the majority cluster — each one is a
    /// detection: a solution confidently presented and collectively
    /// refuted.
    pub outvoted: Vec<usize>,
    /// True when the vote could not certify (no strict majority) or a
    /// claimed solution was outvoted.
    pub detected: bool,
    /// The certified global solution (the majority representative), if a
    /// majority exists.
    pub solution: Option<Vec<f64>>,
}

/// Run every member on `(a_global, b_global)` over `comm`, gather and
/// cluster their claimed solutions, and certify the majority.
///
/// `agree_tol` bounds the relative ℓ² distance within a cluster; with
/// solver tolerances around `1e-8` on well-conditioned systems, `1e-5`
/// comfortably groups genuinely converged members while splitting off
/// silently corrupted ones (whose true residuals are orders larger).
pub fn diversity_vote<C: CommBackend>(
    comm: &mut C,
    a_global: &CsrMatrix,
    b_global: &[f64],
    members: Vec<DiversityMember>,
    opts: &DistSolveOptions,
    agree_tol: f64,
) -> Result<DiversityReport> {
    let total = members.len();
    let da = DistCsr::from_global(comm, a_global)?;
    let b = DistVector::from_global(comm, b_global);

    let mut claimed = Vec::with_capacity(total);
    let mut true_relres = Vec::with_capacity(total);
    let mut solutions: Vec<Option<Vec<f64>>> = Vec::with_capacity(total);
    for member in members {
        let (outcome, _report, probe) = run_kernel_preset(
            comm,
            &da,
            &b,
            member.preset,
            opts,
            member.guard,
            member.spmv_plan,
            member.precond_plan,
        )?;
        // Pool membership is the member's own *claim*, not the harness
        // verification: the vote must catch a confident wrong answer on
        // its own.
        let claims = outcome.reason == StopReason::Converged;
        claimed.push(claims);
        true_relres.push(probe.true_relres);
        solutions.push(if claims {
            Some(outcome.x.gather_global(comm)?)
        } else {
            None
        });
    }

    // Greedy representative clustering over the claimants, on the
    // gathered (rank-identical) global vectors.
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for (idx, sol) in solutions.iter().enumerate() {
        let Some(x) = sol else { continue };
        let mut joined = false;
        for cluster in clusters.iter_mut() {
            let rep = solutions[cluster[0]]
                .as_ref()
                .expect("cluster members are claimants");
            if relative_l2(x, rep) <= agree_tol {
                cluster.push(idx);
                joined = true;
                break;
            }
        }
        if !joined {
            clusters.push(vec![idx]);
        }
    }

    let majority = clusters.iter().position(|c| 2 * c.len() > total);
    let outvoted: Vec<usize> = match majority {
        Some(m) => (0..total)
            .filter(|i| claimed[*i] && !clusters[m].contains(i))
            .collect(),
        None => (0..total).filter(|i| claimed[*i]).collect(),
    };
    let detected = majority.is_none() || !outvoted.is_empty();
    let solution = majority.map(|m| {
        solutions[clusters[m][0]]
            .clone()
            .expect("majority representative is a claimant")
    });
    Ok(DiversityReport {
        members: total,
        claimed,
        true_relres,
        clusters,
        majority,
        outvoted,
        detected,
        solution,
    })
}

/// Relative ℓ² distance `‖x − y‖ / max(‖y‖, 1)` between two gathered
/// global vectors.
fn relative_l2(x: &[f64], y: &[f64]) -> f64 {
    let mut diff = 0.0;
    let mut base = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let d = a - b;
        diff += d * d;
        base += b * b;
    }
    if !diff.is_finite() || !base.is_finite() {
        return f64::INFINITY;
    }
    diff.sqrt() / base.sqrt().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_l2_is_zero_on_identical_and_infinite_on_nan() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(relative_l2(&x, &x), 0.0);
        let y = vec![1.0, f64::NAN, 3.0];
        assert!(relative_l2(&x, &y).is_infinite());
    }

    #[test]
    fn member_builders_shape_the_run() {
        let clean = DiversityMember::clean(CampaignPreset::FusedCg);
        assert!(clean.spmv_plan.is_none() && !clean.guard);
        let plan = StrikePlan::new(vec![]);
        let poisoned = DiversityMember::poisoned(CampaignPreset::PipelinedCg, plan);
        assert!(poisoned.spmv_plan.is_some());
    }
}
