//! Error detectors — the "skepticism" of skeptical programming.
//!
//! §II-A: "algorithm developers … can develop very simple and inexpensive
//! validation tests based on their understanding of the mathematical
//! properties of their algorithms." A [`Detector`] is such a test: it looks
//! at a vector of values (an SpMV result, an Arnoldi column, a conserved
//! quantity) and decides whether it is plausible.

use resilient_linalg::vector::{dot, has_non_finite, nrm2};

/// Outcome of running a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// The data passed the check.
    Clean,
    /// The data failed the check: a corruption (or a genuinely anomalous
    /// numerical event) was detected.
    Suspicious,
}

impl Detection {
    /// Was a problem detected?
    pub fn is_suspicious(&self) -> bool {
        matches!(self, Detection::Suspicious)
    }
}

/// A cheap validity check over a slice of values.
pub trait Detector {
    /// Run the check.
    fn check(&self, data: &[f64]) -> Detection;
    /// Short human-readable name, used in experiment tables.
    fn name(&self) -> &'static str;
}

/// Flags NaNs and infinities — the cheapest possible skepticism.
#[derive(Debug, Clone, Copy, Default)]
pub struct FiniteDetector;

impl Detector for FiniteDetector {
    fn check(&self, data: &[f64]) -> Detection {
        if has_non_finite(data) {
            Detection::Suspicious
        } else {
            Detection::Clean
        }
    }
    fn name(&self) -> &'static str {
        "finite"
    }
}

/// Flags vectors whose 2-norm exceeds a bound (e.g. ‖A x‖ ≤ ‖A‖‖x‖ with a
/// safety factor). The bound is supplied at construction.
#[derive(Debug, Clone, Copy)]
pub struct NormBoundDetector {
    /// Largest acceptable 2-norm.
    pub bound: f64,
}

impl Detector for NormBoundDetector {
    fn check(&self, data: &[f64]) -> Detection {
        let n = nrm2(data);
        if !n.is_finite() || n > self.bound {
            Detection::Suspicious
        } else {
            Detection::Clean
        }
    }
    fn name(&self) -> &'static str {
        "norm-bound"
    }
}

/// Flags a value that jumps by more than `factor` relative to a running
/// reference magnitude — useful for residual histories, which should be
/// non-increasing in well-behaved Krylov solvers.
#[derive(Debug, Clone)]
pub struct RelativeJumpDetector {
    /// Allowed growth factor between consecutive observations.
    pub factor: f64,
    previous: std::cell::Cell<Option<f64>>,
}

impl RelativeJumpDetector {
    /// A detector allowing per-step growth up to `factor`.
    pub fn new(factor: f64) -> Self {
        Self {
            factor,
            previous: std::cell::Cell::new(None),
        }
    }

    /// Observe a scalar (e.g. the residual norm at this iteration).
    pub fn observe(&self, value: f64) -> Detection {
        let verdict = match self.previous.get() {
            Some(prev) if value.is_finite() && value <= prev * self.factor => Detection::Clean,
            None if value.is_finite() => Detection::Clean,
            _ => Detection::Suspicious,
        };
        if verdict == Detection::Clean {
            self.previous.set(Some(value));
        }
        verdict
    }
}

impl Detector for RelativeJumpDetector {
    fn check(&self, data: &[f64]) -> Detection {
        for &v in data {
            if self.observe(v).is_suspicious() {
                return Detection::Suspicious;
            }
        }
        Detection::Clean
    }
    fn name(&self) -> &'static str {
        "relative-jump"
    }
}

/// Checks that two vectors that should be orthogonal actually are, up to a
/// tolerance scaled by their norms — the Arnoldi/Gram–Schmidt invariant the
/// bit-flip-resilient GMRES of §III-A uses.
pub fn orthogonality_check(u: &[f64], v: &[f64], tol: f64) -> Detection {
    let inner = dot(u, v).abs();
    let scale = nrm2(u) * nrm2(v);
    if !inner.is_finite() || inner > tol * scale.max(f64::MIN_POSITIVE) {
        Detection::Suspicious
    } else {
        Detection::Clean
    }
}

/// Checks conservation of a quantity (mass, energy): the relative drift of
/// `current` from `reference` must stay below `tol`.
pub fn conservation_check(reference: f64, current: f64, tol: f64) -> Detection {
    let scale = reference.abs().max(f64::MIN_POSITIVE);
    if !current.is_finite() || ((current - reference) / scale).abs() > tol {
        Detection::Suspicious
    } else {
        Detection::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_detector() {
        let d = FiniteDetector;
        assert_eq!(d.check(&[1.0, 2.0]), Detection::Clean);
        assert_eq!(d.check(&[1.0, f64::NAN]), Detection::Suspicious);
        assert_eq!(d.check(&[f64::NEG_INFINITY]), Detection::Suspicious);
        assert_eq!(d.name(), "finite");
        assert!(!Detection::Clean.is_suspicious());
    }

    #[test]
    fn norm_bound_detector() {
        let d = NormBoundDetector { bound: 10.0 };
        assert_eq!(d.check(&[3.0, 4.0]), Detection::Clean);
        assert_eq!(d.check(&[30.0, 40.0]), Detection::Suspicious);
        assert_eq!(d.check(&[f64::INFINITY]), Detection::Suspicious);
        assert_eq!(d.name(), "norm-bound");
    }

    #[test]
    fn relative_jump_detector_tracks_history() {
        let d = RelativeJumpDetector::new(2.0);
        assert_eq!(d.observe(1.0), Detection::Clean);
        assert_eq!(d.observe(1.5), Detection::Clean);
        assert_eq!(
            d.observe(10.0),
            Detection::Suspicious,
            "a 6x jump must be flagged"
        );
        // A rejected observation does not poison the reference.
        assert_eq!(d.observe(2.0), Detection::Clean);
        assert_eq!(d.observe(f64::NAN), Detection::Suspicious);
        assert_eq!(d.name(), "relative-jump");
    }

    #[test]
    fn relative_jump_detector_as_detector_trait() {
        let d = RelativeJumpDetector::new(1.5);
        assert_eq!(d.check(&[1.0, 1.2, 1.4]), Detection::Clean);
        let d = RelativeJumpDetector::new(1.5);
        assert_eq!(d.check(&[1.0, 5.0]), Detection::Suspicious);
    }

    #[test]
    fn orthogonality() {
        assert_eq!(
            orthogonality_check(&[1.0, 0.0], &[0.0, 1.0], 1e-12),
            Detection::Clean
        );
        assert_eq!(
            orthogonality_check(&[1.0, 0.0], &[1.0, 0.0], 1e-12),
            Detection::Suspicious
        );
        // Nearly orthogonal within tolerance.
        assert_eq!(
            orthogonality_check(&[1.0, 1e-14], &[0.0, 1.0], 1e-12),
            Detection::Clean
        );
        assert_eq!(
            orthogonality_check(&[f64::NAN, 0.0], &[0.0, 1.0], 1e-12),
            Detection::Suspicious
        );
    }

    #[test]
    fn conservation() {
        assert_eq!(
            conservation_check(100.0, 100.0 + 1e-10, 1e-9),
            Detection::Clean
        );
        assert_eq!(
            conservation_check(100.0, 101.0, 1e-9),
            Detection::Suspicious
        );
        assert_eq!(
            conservation_check(100.0, f64::NAN, 1e-9),
            Detection::Suspicious
        );
        assert_eq!(conservation_check(0.0, 1e-300, 1e-9), Detection::Suspicious);
    }
}
