//! Quickstart: the four programming models in one small program.
//!
//! Run with: `cargo run --example quickstart`

use resilience::prelude::*;
use resilient_linalg::poisson2d;
use resilient_runtime::{ReduceOp, Runtime, RuntimeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("resilience quickstart — the four programming models of Heroux (2013)\n");
    for model in ProgrammingModel::ALL {
        println!(
            "  {:<5} (difficulty {}): addresses {}",
            model.abbreviation(),
            model.difficulty_rank(),
            model.addresses()
        );
    }

    // --- SkP: solve a Poisson problem while a bit flip hits one SpMV -------
    let a = poisson2d(12, 12);
    let b = vec![1.0; a.nrows()];
    let plan = InjectionPlan {
        at_application: 4,
        target: FaultTarget::RandomElement,
        bit: Some(61),
    };
    let faulty = FaultyOperator::new(&a, Some(plan), 7);
    let opts = SolveOptions::default().with_tol(1e-8).with_max_iters(400);
    let (out, report) = skeptical_gmres(&faulty, &b, None, &opts, &SkepticalConfig::default());
    println!(
        "\n[SkP ] skeptical GMRES under a bit flip: converged={}, detections={}, true residual={:.2e}",
        out.converged(),
        report.detections,
        true_relative_residual(&a, &b, &out.x)
    );

    // --- SRP: FT-GMRES with an unreliable inner solver ----------------------
    let cfg = FtGmresConfig {
        fault_rate: 1e-4,
        ..FtGmresConfig::default()
    };
    let (ft_out, ft_report) = ft_gmres(&a, &b, &cfg);
    println!(
        "[SRP ] FT-GMRES: converged={}, corruptions absorbed={}, reliable-flop fraction={:.2}",
        ft_out.converged(),
        ft_report.corruptions,
        ft_report.ledger.reliable_fraction()
    );

    // --- RBSP + LFLR: a tiny SPMD job on the simulated runtime --------------
    let runtime = Runtime::new(RuntimeConfig::fast());
    let job = runtime.run(4, |comm| {
        // RBSP: overlap a reduction with local work.
        let pending = comm.iallreduce_scalar(ReduceOp::Sum, comm.rank() as f64)?;
        comm.advance(1e-3); // useful work while the reduction is in flight
        let sum = pending.wait_scalar(comm)?;
        // LFLR: persist something a replacement could recover.
        comm.persist("state", vec![sum])?;
        Ok(sum)
    });
    println!(
        "[RBSP] overlapped allreduce on 4 simulated ranks -> {:?}",
        job.unwrap_all()
    );
    println!("[LFLR] per-rank persistent state written; see the heat_lflr example for recovery");
    Ok(())
}
