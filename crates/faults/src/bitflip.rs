//! Bit-flip injection into floating-point values — the canonical model of a
//! silent data corruption (SDC) event.
//!
//! A single-event upset flips one bit of a stored word. Depending on which
//! bit is hit, the numerical effect ranges from a relative perturbation of
//! 2⁻⁵² (harmless, damped by the algorithm) to a sign flip, a huge exponent
//! change, or a NaN/Inf — exactly the spectrum the skeptical-programming
//! experiments (E1) sweep.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Flip bit `bit` (0 = least-significant mantissa bit, 63 = sign bit) of an
/// `f64` value.
pub fn flip_bit_f64(value: f64, bit: u32) -> f64 {
    assert!(bit < 64, "f64 has 64 bits");
    f64::from_bits(value.to_bits() ^ (1u64 << bit))
}

/// Flip bit `bit` (0–31) of an `f32` value.
pub fn flip_bit_f32(value: f32, bit: u32) -> f32 {
    assert!(bit < 32, "f32 has 32 bits");
    f32::from_bits(value.to_bits() ^ (1u32 << bit))
}

/// Flip a uniformly random bit of an `f64` value.
pub fn flip_random_bit_f64(value: f64, rng: &mut ChaCha8Rng) -> (f64, u32) {
    let bit = rng.gen_range(0..64);
    (flip_bit_f64(value, bit), bit)
}

/// Flip a random bit of a random element of a slice, in place. Returns the
/// `(index, bit, old_value)` that was corrupted, or `None` for an empty
/// slice.
pub fn flip_random_element(data: &mut [f64], rng: &mut ChaCha8Rng) -> Option<(usize, u32, f64)> {
    if data.is_empty() {
        return None;
    }
    let idx = rng.gen_range(0..data.len());
    let old = data[idx];
    let (new, bit) = flip_random_bit_f64(old, rng);
    data[idx] = new;
    Some((idx, bit, old))
}

/// Classification of the numerical severity of a bit flip, used when
/// reporting detection coverage by bit position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipSeverity {
    /// The value did not change (flipping a bit of a NaN payload, or ±0).
    NoChange,
    /// Relative change below 1e-12: almost certainly harmless.
    Negligible,
    /// Relative change between 1e-12 and 1e-2: may slow convergence.
    Moderate,
    /// Relative change above 1e-2 (including sign flips): likely to corrupt
    /// the result if undetected.
    Severe,
    /// The flip produced a NaN or infinity.
    NonFinite,
}

/// Classify the severity of changing `old` into `new`.
pub fn classify_flip(old: f64, new: f64) -> FlipSeverity {
    if !new.is_finite() {
        return FlipSeverity::NonFinite;
    }
    if new == old {
        return FlipSeverity::NoChange;
    }
    let scale = old.abs().max(f64::MIN_POSITIVE);
    let rel = (new - old).abs() / scale;
    if rel < 1e-12 {
        FlipSeverity::Negligible
    } else if rel < 1e-2 {
        FlipSeverity::Moderate
    } else {
        FlipSeverity::Severe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn flip_is_an_involution() {
        for &v in &[0.0, 1.0, -3.25, 1e300, 1e-300, std::f64::consts::PI] {
            for bit in [0, 17, 31, 52, 62, 63] {
                let flipped = flip_bit_f64(v, bit);
                assert_eq!(flip_bit_f64(flipped, bit).to_bits(), v.to_bits());
                if v != 0.0 || bit != 63 {
                    // (sign flip of +0.0 gives -0.0 which compares equal)
                    assert_ne!(
                        flipped.to_bits(),
                        v.to_bits(),
                        "bit {bit} must change the bits"
                    );
                }
            }
        }
    }

    #[test]
    fn sign_bit_flips_sign() {
        assert_eq!(flip_bit_f64(2.5, 63), -2.5);
        assert_eq!(flip_bit_f32(2.5, 31), -2.5);
    }

    #[test]
    fn low_mantissa_bit_is_tiny_perturbation() {
        let v = 1.0;
        let f = flip_bit_f64(v, 0);
        assert!((f - v).abs() < 1e-15);
        assert_eq!(classify_flip(v, f), FlipSeverity::Negligible);
    }

    #[test]
    fn high_exponent_bit_is_severe_or_nonfinite() {
        let v = 1.0;
        let f = flip_bit_f64(v, 62);
        assert!(matches!(
            classify_flip(v, f),
            FlipSeverity::Severe | FlipSeverity::NonFinite
        ));
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify_flip(1.0, 1.0), FlipSeverity::NoChange);
        assert_eq!(classify_flip(1.0, 1.0 + 1e-14), FlipSeverity::Negligible);
        assert_eq!(classify_flip(1.0, 1.0 + 1e-6), FlipSeverity::Moderate);
        assert_eq!(classify_flip(1.0, 2.0), FlipSeverity::Severe);
        assert_eq!(classify_flip(1.0, f64::NAN), FlipSeverity::NonFinite);
        assert_eq!(classify_flip(1.0, f64::INFINITY), FlipSeverity::NonFinite);
    }

    #[test]
    fn random_flip_reports_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut data = vec![1.0, 2.0, 3.0, 4.0];
        let original = data.clone();
        let (idx, bit, old) = flip_random_element(&mut data, &mut rng).unwrap();
        assert!(idx < 4);
        assert!(bit < 64);
        assert_eq!(old, original[idx]);
        assert_ne!(data[idx].to_bits(), original[idx].to_bits());
        // All other elements untouched.
        for i in 0..4 {
            if i != idx {
                assert_eq!(data[i], original[i]);
            }
        }
    }

    #[test]
    fn empty_slice_returns_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(flip_random_element(&mut [], &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "64 bits")]
    fn bit_out_of_range_panics() {
        flip_bit_f64(1.0, 64);
    }
}
