//! Fault-injection campaigns: reproducible sequences of corruption events
//! driven by a [`FaultProcess`], plus the bookkeeping of what each injected
//! fault did to the computation.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::bitflip::{classify_flip, flip_random_element, FlipSeverity};
use crate::process::{FaultClock, FaultProcess};

/// What ultimately happened to a computation subjected to one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SdcOutcome {
    /// The fault was detected by a skeptical check (and possibly corrected).
    Detected,
    /// The fault was not detected but the final answer was still correct
    /// (within tolerance): a benign fault.
    Benign,
    /// The fault was not detected and the final answer was wrong: true
    /// silent data corruption — the outcome resilient algorithms must avoid.
    SilentCorruption,
    /// The computation failed loudly (diverged, NaN, iteration limit): not
    /// silent, but not productive either.
    LoudFailure,
}

/// Record of one injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    /// Campaign trial index.
    pub trial: usize,
    /// Index of the corrupted element within the target buffer.
    pub index: usize,
    /// Which bit was flipped.
    pub bit: u32,
    /// Value before the flip.
    pub old_value: f64,
    /// Numerical severity classification of the flip.
    pub severity: FlipSeverity,
    /// What the computation did about it.
    pub outcome: SdcOutcome,
}

/// Aggregated campaign statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Total trials with an injected fault.
    pub injected: u64,
    /// Faults detected by a check.
    pub detected: u64,
    /// Undetected but benign.
    pub benign: u64,
    /// Undetected and harmful (true SDC).
    pub silent_corruptions: u64,
    /// Loud failures.
    pub loud_failures: u64,
}

impl CampaignStats {
    /// Record one outcome.
    pub fn record(&mut self, outcome: SdcOutcome) {
        self.injected += 1;
        match outcome {
            SdcOutcome::Detected => self.detected += 1,
            SdcOutcome::Benign => self.benign += 1,
            SdcOutcome::SilentCorruption => self.silent_corruptions += 1,
            SdcOutcome::LoudFailure => self.loud_failures += 1,
        }
    }

    /// Fraction of *harmful* faults (those that were not benign) that were
    /// detected. Benign faults that go undetected do not count against the
    /// detector — the paper explicitly allows "continuing execution if the
    /// error will be damped".
    pub fn harmful_detection_rate(&self) -> f64 {
        let harmful = self.detected + self.silent_corruptions + self.loud_failures;
        if harmful == 0 {
            1.0
        } else {
            self.detected as f64 / harmful as f64
        }
    }

    /// Fraction of all trials that ended in silent corruption.
    pub fn sdc_rate(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.silent_corruptions as f64 / self.injected as f64
        }
    }
}

/// A reproducible fault injector bound to a fault process and a seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: ChaCha8Rng,
    clock: FaultClock,
    records: Vec<InjectionRecord>,
    trial: usize,
}

impl FaultInjector {
    /// Create an injector with the given arrival process and seed.
    pub fn new(process: FaultProcess, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let clock = FaultClock::new(process, &mut rng);
        Self {
            rng,
            clock,
            records: Vec::new(),
            trial: 0,
        }
    }

    /// Advance the exposure axis by `delta` (seconds, FLOPs, iterations —
    /// whatever unit the process was configured in) and, if a fault strikes,
    /// corrupt one random element of `target`. Returns the record of the
    /// injected fault, if any.
    pub fn expose(&mut self, delta: f64, target: &mut [f64]) -> Option<InjectionRecord> {
        let strikes = self.clock.advance(delta, &mut self.rng);
        if strikes == 0 {
            return None;
        }
        let (index, bit, old_value) = flip_random_element(target, &mut self.rng)?;
        let record = InjectionRecord {
            trial: self.trial,
            index,
            bit,
            old_value,
            severity: classify_flip(old_value, target[index]),
            outcome: SdcOutcome::Benign, // provisional; caller classifies later
        };
        self.records.push(record.clone());
        Some(record)
    }

    /// Unconditionally corrupt one random element of `target` (used by
    /// campaigns that inject exactly one fault per trial at a chosen moment).
    pub fn inject_now(&mut self, target: &mut [f64]) -> Option<InjectionRecord> {
        let (index, bit, old_value) = flip_random_element(target, &mut self.rng)?;
        let record = InjectionRecord {
            trial: self.trial,
            index,
            bit,
            old_value,
            severity: classify_flip(old_value, target[index]),
            outcome: SdcOutcome::Benign,
        };
        self.records.push(record.clone());
        Some(record)
    }

    /// Begin a new trial (affects only the trial index recorded with
    /// subsequent injections).
    pub fn next_trial(&mut self) {
        self.trial += 1;
    }

    /// Records of every injection performed so far.
    pub fn records(&self) -> &[InjectionRecord] {
        &self.records
    }

    /// Borrow the injector's RNG (for callers that need auxiliary random
    /// choices tied to the same reproducible stream).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_process_never_injects() {
        let mut inj = FaultInjector::new(FaultProcess::Never, 1);
        let mut data = vec![1.0; 8];
        for _ in 0..100 {
            assert!(inj.expose(1.0, &mut data).is_none());
        }
        assert_eq!(data, vec![1.0; 8]);
        assert!(inj.records().is_empty());
    }

    #[test]
    fn inject_now_always_corrupts() {
        let mut inj = FaultInjector::new(FaultProcess::Never, 2);
        let mut data = vec![1.0; 4];
        let rec = inj.inject_now(&mut data).unwrap();
        assert!(rec.index < 4);
        assert_eq!(rec.old_value, 1.0);
        assert_ne!(data[rec.index].to_bits(), 1.0f64.to_bits());
        assert_eq!(inj.records().len(), 1);
    }

    #[test]
    fn poisson_process_injects_at_expected_rate() {
        let mut inj = FaultInjector::new(FaultProcess::Poisson { rate: 0.01 }, 3);
        let mut data = vec![1.0; 16];
        let mut hits = 0;
        for _ in 0..10_000 {
            if inj.expose(1.0, &mut data).is_some() {
                hits += 1;
                data = vec![1.0; 16]; // reset so later flips have a clean target
            }
        }
        assert!(
            (50..200).contains(&hits),
            "expected ≈100 injections, got {hits}"
        );
    }

    #[test]
    fn trial_index_is_recorded() {
        let mut inj = FaultInjector::new(FaultProcess::Never, 4);
        let mut data = vec![2.0; 2];
        inj.inject_now(&mut data);
        inj.next_trial();
        inj.inject_now(&mut data);
        assert_eq!(inj.records()[0].trial, 0);
        assert_eq!(inj.records()[1].trial, 1);
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultProcess::Never, seed);
            let mut data = vec![1.0, 2.0, 3.0];
            let r = inj.inject_now(&mut data).unwrap();
            (r.index, r.bit)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn campaign_stats_classification() {
        let mut stats = CampaignStats::default();
        stats.record(SdcOutcome::Detected);
        stats.record(SdcOutcome::Detected);
        stats.record(SdcOutcome::Benign);
        stats.record(SdcOutcome::SilentCorruption);
        stats.record(SdcOutcome::LoudFailure);
        assert_eq!(stats.injected, 5);
        assert!((stats.harmful_detection_rate() - 0.5).abs() < 1e-12);
        assert!((stats.sdc_rate() - 0.2).abs() < 1e-12);
        let empty = CampaignStats::default();
        assert_eq!(empty.harmful_detection_rate(), 1.0);
        assert_eq!(empty.sdc_rate(), 0.0);
    }
}
