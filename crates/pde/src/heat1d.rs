//! Serial 1-D heat equation reference: explicit stepping and the analytic
//! solution used to verify every distributed / resilient variant.
//!
//! The model problem is `u_t = κ·u_xx` on `(0, 1)` with homogeneous Dirichlet
//! boundaries and initial condition `u(x, 0) = sin(πx)`, whose exact solution
//! is `u(x, t) = e^{-κπ²t}·sin(πx)`.

/// Problem description for the 1-D heat equation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatProblem {
    /// Number of interior grid points.
    pub n: usize,
    /// Diffusivity κ.
    pub kappa: f64,
    /// Time-step size (must satisfy the explicit stability limit
    /// `dt ≤ dx²/(2κ)` for explicit stepping).
    pub dt: f64,
}

impl HeatProblem {
    /// A stable explicit configuration with `n` interior points: `dt` is set
    /// to 40 % of the stability limit.
    pub fn stable(n: usize, kappa: f64) -> Self {
        let dx = 1.0 / (n as f64 + 1.0);
        Self {
            n,
            kappa,
            dt: 0.4 * dx * dx / kappa,
        }
    }

    /// Grid spacing.
    pub fn dx(&self) -> f64 {
        1.0 / (self.n as f64 + 1.0)
    }

    /// Coordinate of interior point `i` (0-based).
    pub fn x(&self, i: usize) -> f64 {
        (i as f64 + 1.0) * self.dx()
    }

    /// Initial condition sampled on the interior grid.
    pub fn initial(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| (std::f64::consts::PI * self.x(i)).sin())
            .collect()
    }

    /// Exact solution at time `t` on the interior grid.
    pub fn exact(&self, t: f64) -> Vec<f64> {
        let pi = std::f64::consts::PI;
        let decay = (-self.kappa * pi * pi * t).exp();
        (0..self.n)
            .map(|i| decay * (pi * self.x(i)).sin())
            .collect()
    }

    /// Courant number `κ·dt/dx²` (explicit stepping is stable for ≤ 0.5).
    pub fn courant(&self) -> f64 {
        self.kappa * self.dt / (self.dx() * self.dx())
    }

    /// One explicit (forward-Euler) step applied in place, with Dirichlet
    /// zero boundaries.
    pub fn explicit_step(&self, u: &mut Vec<f64>) {
        let r = self.courant();
        let n = u.len();
        let mut next = vec![0.0; n];
        for i in 0..n {
            let left = if i > 0 { u[i - 1] } else { 0.0 };
            let right = if i + 1 < n { u[i + 1] } else { 0.0 };
            next[i] = u[i] + r * (left - 2.0 * u[i] + right);
        }
        *u = next;
    }

    /// Run `steps` explicit steps from the initial condition and return the
    /// final field.
    pub fn run_explicit(&self, steps: usize) -> Vec<f64> {
        let mut u = self.initial();
        for _ in 0..steps {
            self.explicit_step(&mut u);
        }
        u
    }

    /// Discrete L2 error of `u` against the exact solution at time `t`.
    pub fn l2_error(&self, u: &[f64], t: f64) -> f64 {
        let exact = self.exact(t);
        let dx = self.dx();
        u.iter()
            .zip(&exact)
            .map(|(a, b)| (a - b) * (a - b) * dx)
            .sum::<f64>()
            .sqrt()
    }

    /// Total heat content (the conserved-ish quantity used by the skeptical
    /// conservation check; it decays smoothly and never jumps).
    pub fn total_heat(u: &[f64]) -> f64 {
        u.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_configuration_respects_cfl() {
        let p = HeatProblem::stable(64, 1.0);
        assert!(p.courant() <= 0.5);
        assert!(p.courant() > 0.1);
        assert!((p.dx() - 1.0 / 65.0).abs() < 1e-15);
    }

    #[test]
    fn initial_condition_is_sine() {
        let p = HeatProblem::stable(9, 1.0);
        let u0 = p.initial();
        assert_eq!(u0.len(), 9);
        // Symmetric about the midpoint, maximum in the middle.
        assert!((u0[4] - 1.0).abs() < 1e-2);
        assert!((u0[0] - u0[8]).abs() < 1e-12);
    }

    #[test]
    fn explicit_solution_tracks_exact_solution() {
        let p = HeatProblem::stable(64, 1.0);
        let steps = 200;
        let u = p.run_explicit(steps);
        let t = steps as f64 * p.dt;
        let err = p.l2_error(&u, t);
        assert!(err < 5e-4, "L2 error {err} too large");
        // And the error shrinks with resolution (first-order in dt, second in dx).
        let p2 = HeatProblem::stable(128, 1.0);
        let steps2 = (t / p2.dt).round() as usize;
        let u2 = p2.run_explicit(steps2);
        let err2 = p2.l2_error(&u2, steps2 as f64 * p2.dt);
        assert!(
            err2 < err,
            "refinement must reduce the error: {err2} vs {err}"
        );
    }

    #[test]
    fn heat_decays_monotonically() {
        let p = HeatProblem::stable(32, 1.0);
        let mut u = p.initial();
        let mut prev = HeatProblem::total_heat(&u);
        for _ in 0..50 {
            p.explicit_step(&mut u);
            let now = HeatProblem::total_heat(&u);
            assert!(now <= prev + 1e-12, "total heat must not grow");
            prev = now;
        }
        assert!(prev > 0.0);
    }
}
