// analysis-as: crates/linalg/src/fixture_ops.rs
// Fixture: undocumented unsafe sites and an unguarded #[target_feature]
// call. Every unsafe below lacks `SAFETY` and the file never consults
// is_x86_feature_detected, so `safety-contract` must fire three times.

#[target_feature(enable = "avx2")]
unsafe fn kernel(x: &[f64]) -> f64 {
    x[0] + x[1]
}

pub fn call_without_detection(x: &[f64]) -> f64 {
    unsafe { kernel(x) }
}

// SAFETY: documented site — must NOT fire; slice is non-empty by contract.
unsafe fn documented(x: &[f64]) -> f64 {
    *x.get_unchecked(0)
}
