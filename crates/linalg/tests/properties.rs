//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use resilient_linalg::checksum::{ChecksumVerdict, ChecksummedCsr, ChecksummedMatrix};
use resilient_linalg::vector::{dot, nrm2};
use resilient_linalg::{CooMatrix, DenseMatrix, Givens};

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 64 }))]

    /// Givens rotations preserve the Euclidean norm of the pair they act on.
    #[test]
    fn givens_preserves_norm(a in -1e6f64..1e6, b in -1e6f64..1e6, x in -1e3f64..1e3, y in -1e3f64..1e3) {
        let g = Givens::compute(a, b);
        let (ra, rb) = g.apply(a, b);
        prop_assert!(rb.abs() <= 1e-9 * a.hypot(b).max(1.0));
        prop_assert!((ra.abs() - a.hypot(b)).abs() <= 1e-9 * a.hypot(b).max(1.0));
        let (rx, ry) = g.apply(x, y);
        prop_assert!((rx.hypot(ry) - x.hypot(y)).abs() <= 1e-9 * x.hypot(y).max(1.0));
    }

    /// Sparse SpMV agrees with the densified GEMV for random sparse matrices.
    #[test]
    fn csr_spmv_matches_dense_gemv(
        n in 2usize..12,
        entries in prop::collection::vec((0usize..12, 0usize..12, -10.0f64..10.0), 0..60),
        seed_x in 0u64..1000,
    ) {
        let mut coo = CooMatrix::new(n, n);
        for (i, j, v) in entries {
            coo.push(i % n, j % n, v);
        }
        let a = coo.to_csr();
        let x: Vec<f64> = (0..n).map(|i| ((i as u64 + seed_x) % 7) as f64 - 3.0).collect();
        let sparse = a.spmv(&x);
        let dense = a.to_dense().gemv(&x);
        for (s, d) in sparse.iter().zip(&dense) {
            prop_assert!((s - d).abs() < 1e-9);
        }
        // Transposing twice is the identity (structurally and numerically).
        let att = a.transpose().transpose();
        prop_assert_eq!(att.to_dense(), a.to_dense());
    }

    /// The dot product is symmetric and the norm is absolutely homogeneous.
    #[test]
    fn dot_and_norm_axioms(x in small_vec(8), y in small_vec(8), alpha in -10.0f64..10.0) {
        prop_assert!((dot(&x, &y) - dot(&y, &x)).abs() < 1e-9);
        let scaled: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        prop_assert!((nrm2(&scaled) - alpha.abs() * nrm2(&x)).abs() < 1e-7 * nrm2(&x).max(1.0));
        // Cauchy–Schwarz.
        prop_assert!(dot(&x, &y).abs() <= nrm2(&x) * nrm2(&y) + 1e-9);
    }

    /// A clean checksummed matrix always verifies; a single large corruption
    /// is always localised to the right element and corrected.
    #[test]
    fn checksum_encode_verify_correct_roundtrip(
        rows in 2usize..8,
        cols in 2usize..8,
        fill in prop::collection::vec(-50.0f64..50.0, 64),
        corrupt_row in 0usize..8,
        corrupt_col in 0usize..8,
        delta in prop::sample::select(vec![1.0e3f64, -7.5e2, 4.2e4]),
    ) {
        let mut m = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, fill[(i * cols + j) % fill.len()]);
            }
        }
        let cm = ChecksummedMatrix::encode(&m);
        prop_assert_eq!(cm.verify(1e-10), ChecksumVerdict::Clean);

        let (ci, cj) = (corrupt_row % rows, corrupt_col % cols);
        let mut corrupted = cm.clone();
        corrupted.data.add_to(ci, cj, delta);
        match corrupted.verify(1e-10) {
            ChecksumVerdict::SingleError { row, col, magnitude } => {
                prop_assert_eq!((row, col), (ci, cj));
                prop_assert!((magnitude - delta).abs() < 1e-6 * delta.abs());
            }
            other => prop_assert!(false, "expected SingleError, got {:?}", other),
        }
        prop_assert!(corrupted.correct(1e-10));
        prop_assert!((corrupted.data.get(ci, cj) - m.get(ci, cj)).abs() < 1e-6 * delta.abs());
    }

    /// The aggregate SpMV checksum accepts every clean product and rejects
    /// any product with one large corrupted entry.
    #[test]
    fn spmv_checksum_accepts_clean_rejects_corrupt(
        n in 2usize..10,
        entries in prop::collection::vec((0usize..10, 0usize..10, -5.0f64..5.0), 1..40),
        idx in 0usize..10,
    ) {
        let mut coo = CooMatrix::new(n, n);
        for (i, j, v) in entries {
            coo.push(i % n, j % n, v);
        }
        for i in 0..n {
            coo.push(i, i, 10.0); // keep the matrix nontrivial
        }
        let enc = ChecksummedCsr::encode(coo.to_csr());
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
        let (y, ok) = enc.spmv_checked(&x, 1e-10);
        prop_assert!(ok);
        let mut bad = y.clone();
        bad[idx % n] += 1.0e4;
        prop_assert!(!enc.verify_product(&x, &bad, 1e-10));
    }
}
