//! Composed resilience scenarios — combinations the pre-kernel silos could
//! not express.
//!
//! * [`pipelined_skeptical_gmres`] — **RBSP × SkP**: the p(1)-pipelined
//!   GMRES (latency hiding via a nonblocking fused reduction) running under
//!   the full skeptical SDC-detection stack, over the distributed runtime.
//!   With the wants-dots negotiation the checks ride the strategy's own
//!   reduction: one allreduce per iteration, detection included.
//! * [`pipelined_skeptical_cg`] — **RBSP × SkP** over the CG recurrence:
//!   pipelined CG whose single fused reduction carries the skeptical check
//!   dots, with recurrence-rebuild recovery on detection.
//! * [`pipelined_skeptical_pcg`] / [`pipelined_skeptical_pgmres`] —
//!   **RBSP × preconditioning × SkP**: the same compositions over the
//!   *preconditioned* pipelined recurrences (block-Jacobi or any other
//!   [`SpacePreconditioner`]), so fault scenarios run at production-like
//!   iteration counts with detection still off the critical path.
//! * [`ft_gmres_abft`] — **SRP × ABFT**: FT-GMRES (reliable outer /
//!   unreliable inner iterations) whose *outer* products are additionally
//!   verified against Huang–Abraham checksums, so corruption of the
//!   supposedly reliable tier is caught and rolled back instead of silently
//!   absorbed as slower convergence.
//!
//! Both report per-policy overhead through [`PolicyOverhead`]; the
//! distributed scenario additionally attributes the check arithmetic in the
//! runtime's per-rank ledger (`RankStats::check_flops`), while the time cost
//! of the checks is charged by the reductions that perform them.

use resilient_linalg::checksum::ChecksummedCsr;
use resilient_linalg::CsrMatrix;
use resilient_runtime::{CommBackend, ReduceOp, Result};

use super::cg::{run_cg, PipelinedCgStep};
use super::gmres::{run_gmres, GmresFlavor, PipelinedOrtho};
use super::policy::{
    CheckDot, CheckOperand, DetectionResponse, IterCtx, PolicyAction, PolicyOverhead, PolicyStack,
    ResiliencePolicy,
};
use super::precond::{RightPrecond, SpacePreconditioner};
use super::skeptic::SkepticalPolicy;
use super::space::{DistSpace, KrylovSpace, SerialSpace, SpmvFault};
use crate::distributed::{DistCsr, DistVector};
use crate::rbsp::{DistSolveOptions, DistSolveOutcome};
use crate::skeptical::sdc_gmres::{SkepticalConfig, SkepticalReport};
use crate::solvers::common::{Operator, SolveOutcome};
use crate::srp::ft_gmres::{ft_gmres_with_policies, FtGmresConfig, FtGmresReport};

// ---------------------------------------------------------------------------
// ABFT SpMV policy
// ---------------------------------------------------------------------------

/// Verifies every operator product against the Huang–Abraham column-sum
/// checksum of the clean matrix: for `w = A·v`, `Σ_i w_i` must equal
/// `(eᵀA)·v`. An O(n) end-to-end check per SpMV that catches single-event
/// upsets in the product regardless of where they struck.
///
/// Both sides of the identity are inner products — `Σ_i w_i = (e, w)` and
/// `(eᵀA)·v = (c, v)` with policy-owned vectors `e` (all ones) and `c` (the
/// column sums) — so on strategies with a fused reduction the policy rides
/// the wants-dots negotiation: it supplies the two pairs through
/// [`ResiliencePolicy::check_pairs`], receives the reduced scalars before
/// its hook runs, and `after_spmv` only computes the O(n) tolerance scale.
/// Immediate-dot strategies (`MgsOrtho`, `PcgStep`) never negotiate and
/// keep the legacy direct verification. On pipelined schedules the fused
/// scalars refer to the most recent *completed* product (the usual one-step
/// wants-dots lag), and the tolerance scale uses the hook's current input —
/// adjacent Krylov vectors of comparable magnitude.
pub struct AbftSpmvPolicy {
    encoded: ChecksummedCsr,
    /// The all-ones vector `e`, the policy-owned left operand of `(e, w)`.
    ones: Vec<f64>,
    tol: f64,
    response: DetectionResponse,
    overhead: PolicyOverhead,
    /// Participate in wants-dots fusion (default); disable for comparison
    /// runs pinning the direct schedule.
    fuse_checks: bool,
    /// True once a fusing strategy negotiated this round.
    fused_round: bool,
    /// Reduced `(Σw, (eᵀA)·v)` of the current round, consumed by the hook.
    pending: Option<(f64, f64)>,
    fused_decisions: usize,
}

impl AbftSpmvPolicy {
    /// Encode `a` (the *clean* matrix) for verification with relative
    /// tolerance `tol`.
    pub fn for_matrix(a: &CsrMatrix, tol: f64) -> Self {
        Self {
            ones: vec![1.0; a.nrows()],
            encoded: ChecksummedCsr::encode(a.clone()),
            tol,
            response: DetectionResponse::Restart,
            overhead: PolicyOverhead {
                name: "abft-spmv",
                ..PolicyOverhead::default()
            },
            fuse_checks: true,
            fused_round: false,
            pending: None,
            fused_decisions: 0,
        }
    }

    /// Override the detection response (default: restart the cycle).
    pub fn with_response(mut self, response: DetectionResponse) -> Self {
        self.response = response;
        self
    }

    /// Decline the wants-dots negotiation and verify directly in the hook
    /// even on fusing strategies (comparison experiments).
    pub fn unfused(mut self) -> Self {
        self.fuse_checks = false;
        self
    }

    /// Detections so far.
    pub fn detections(&self) -> usize {
        self.overhead.detections
    }

    /// Checks decided from scalars that rode a strategy's fused reduction.
    pub fn fused_decisions(&self) -> usize {
        self.fused_decisions
    }

    /// Total hook invocations that performed a check (fused or direct).
    pub fn checks_run(&self) -> usize {
        self.overhead.checks_run
    }
}

impl<'a, O: Operator + ?Sized> ResiliencePolicy<SerialSpace<'a, O>> for AbftSpmvPolicy {
    fn name(&self) -> &'static str {
        "abft-spmv"
    }

    fn response(&self) -> DetectionResponse {
        self.response
    }

    fn check_pairs<'v>(&'v mut self, _ctx: &IterCtx) -> Vec<(&'v Vec<f64>, CheckOperand)> {
        if !self.fuse_checks {
            return Vec::new();
        }
        self.fused_round = true;
        self.pending = None;
        vec![
            (&self.ones, CheckOperand::SpmvProduct),
            (&self.encoded.col_sums, CheckOperand::SpmvInput),
        ]
    }

    fn consume_check_dots(&mut self, _ctx: &IterCtx, local_n: usize, values: &[(CheckDot, f64)]) {
        // The tagged reduction already attributed the pairs' 2n FLOPs each
        // in the space's check ledger; mirror them into this policy's.
        self.overhead.check_flops += 2 * local_n * values.len();
        let mut sum_w = None;
        let mut expected = None;
        for (which, value) in values {
            match which {
                CheckDot::PolicyPair(0) => sum_w = Some(*value),
                CheckDot::PolicyPair(1) => expected = Some(*value),
                _ => {}
            }
        }
        if let (Some(s), Some(e)) = (sum_w, expected) {
            self.pending = Some((s, e));
        }
    }

    fn after_spmv(
        &mut self,
        space: &mut SerialSpace<'a, O>,
        _ctx: &IterCtx,
        v: &Vec<f64>,
        w: &Vec<f64>,
    ) -> Result<PolicyAction> {
        let clean = if self.fused_round {
            match self.pending.take() {
                Some((sum_w, expected)) => {
                    // Fused path: both reductions rode the strategy's own;
                    // only the O(n) tolerance scale is computed here —
                    // the same threshold `verify_product` applies, via the
                    // shared helper.
                    self.overhead.checks_run += 1;
                    self.fused_decisions += 1;
                    let cost = w.len();
                    self.overhead.check_flops += cost;
                    space.record_check_flops(cost);
                    (sum_w - expected).abs() <= self.tol * self.encoded.product_tolerance_scale(v)
                }
                // The strategy could not resolve the pairs this round
                // (defensive; every fusing strategy offers input and
                // product) — fall back to the direct verification.
                None => self.verify_direct(space, v, w),
            }
        } else {
            self.verify_direct(space, v, w)
        };
        if clean {
            Ok(PolicyAction::Continue)
        } else {
            self.overhead.detections += 1;
            Ok(PolicyAction::Detected)
        }
    }

    fn overhead(&self) -> PolicyOverhead {
        self.overhead.clone()
    }

    fn note_restart(&mut self) {
        self.overhead.restarts += 1;
    }
}

impl AbftSpmvPolicy {
    /// The legacy direct verification: recompute both checksum sides in the
    /// hook, charging Σw (n adds) + `(eᵀA)·v` (2n) + the scale estimate (n).
    fn verify_direct<'a, O: Operator + ?Sized>(
        &mut self,
        space: &mut SerialSpace<'a, O>,
        v: &[f64],
        w: &[f64],
    ) -> bool {
        self.overhead.checks_run += 1;
        let cost = 4 * w.len();
        self.overhead.check_flops += cost;
        space.record_check_flops(cost);
        self.encoded.verify_product(v, w, self.tol)
    }
}

// ---------------------------------------------------------------------------
// Scenario 1: pipelined GMRES × skeptical SDC detection (RBSP × SkP)
// ---------------------------------------------------------------------------

/// Report of one composed pipelined-skeptical solve.
#[derive(Debug, Clone, Default)]
pub struct ComposedDistReport {
    /// The skeptical policy's legacy-format report.
    pub skeptical: SkepticalReport,
    /// Per-policy overhead in stack order.
    pub policies: Vec<PolicyOverhead>,
    /// Bit flips actually injected by the space-level fault plan.
    pub injections: usize,
    /// Cycle restarts triggered by policy detections.
    pub policy_restarts: usize,
}

/// p(1)-pipelined GMRES with the skeptical SDC-detection stack — latency
/// hiding *and* corruption detection in one solve, which the rbsp/skeptical
/// silos could not combine. `fault` optionally injects a single-event upset
/// into a chosen SpMV product (see [`SpmvFault`]).
pub fn pipelined_skeptical_gmres<C: CommBackend>(
    comm: &mut C,
    a: &DistCsr,
    b: &DistVector,
    opts: &DistSolveOptions,
    skeptic: &SkepticalConfig,
    fault: Option<SpmvFault>,
) -> Result<(DistSolveOutcome, ComposedDistReport)> {
    // Pairwise orthogonality is an invariant of *explicitly orthogonalized*
    // bases. The p(1) basis is recovered by linearity and legitimately
    // drifts to ~1e-2 orthogonality on clean runs as the residual
    // approaches the tolerance, so the orthogonality test carries no signal
    // here and is disabled (a NaN inner product still trips it). The
    // finiteness, norm-bound and residual-consistency checks — which remain
    // valid invariants of the pipelined recurrence — keep their configured
    // strictness and carry the SDC detection.
    let mut skeptic = *skeptic;
    skeptic.orthogonality_tol = f64::INFINITY;
    let skeptic = &skeptic;
    // Globally agreed ∞-norm bound for the norm-bound check.
    let norm_a = comm.allreduce_scalar(ReduceOp::Max, a.local_norm_inf())?;
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter)
        .with_operator_norm(norm_a);
    if let Some(f) = fault {
        space = space.with_fault(f);
    }
    let mut skeptical = SkepticalPolicy::new(*skeptic);
    let mut policies = PolicyStack::new(vec![&mut skeptical]);
    let (outcome, report) = run_gmres(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut PipelinedOrtho::new(),
        &mut policies,
        None,
        &GmresFlavor::distributed(),
    )?;
    let injections = space.injections();
    Ok((
        outcome.into_dist_outcome(opts.tol),
        ComposedDistReport {
            skeptical: skeptical.report(),
            policies: report.policy_overhead,
            injections,
            policy_restarts: report.policy_restarts,
        },
    ))
}

// ---------------------------------------------------------------------------
// Scenario 1b: pipelined CG × skeptical SDC detection (RBSP × SkP)
// ---------------------------------------------------------------------------

/// Pipelined CG (Ghysels–Vanroose) with the skeptical SDC-detection stack —
/// the first ROADMAP follow-on composition over the unified kernel.
///
/// The CG recurrence's single nonblocking fused reduction carries the
/// skeptical check dots via the wants-dots negotiation, so SDC detection
/// adds **zero** collectives per iteration: one reduction per step, checks
/// included (the recurrence maintains `w = A·r`, so the fused norm-bound /
/// finiteness decision lags the overlapped product by one step). On a
/// `Restart`-response detection the kernel rebuilds the recurrence from the
/// current iterate — CG's analogue of discarding a corrupted Arnoldi cycle.
/// `fault` optionally injects a single-event upset into a chosen SpMV
/// product (see [`SpmvFault`]).
pub fn pipelined_skeptical_cg<C: CommBackend>(
    comm: &mut C,
    a: &DistCsr,
    b: &DistVector,
    opts: &DistSolveOptions,
    skeptic: &SkepticalConfig,
    fault: Option<SpmvFault>,
) -> Result<(DistSolveOutcome, ComposedDistReport)> {
    // Globally agreed ∞-norm bound for the norm-bound check.
    let norm_a = comm.allreduce_scalar(ReduceOp::Max, a.local_norm_inf())?;
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter)
        .with_operator_norm(norm_a);
    if let Some(f) = fault {
        space = space.with_fault(f);
    }
    let mut skeptical = SkepticalPolicy::new(*skeptic);
    let mut policies = PolicyStack::new(vec![&mut skeptical]);
    let (outcome, report) = run_cg(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut PipelinedCgStep::new(),
        &mut policies,
    )?;
    let injections = space.injections();
    Ok((
        outcome.into_dist_outcome(opts.tol),
        ComposedDistReport {
            skeptical: skeptical.report(),
            policies: report.policy_overhead,
            injections,
            policy_restarts: report.policy_restarts,
        },
    ))
}

// ---------------------------------------------------------------------------
// Scenario 1c: preconditioned pipelined solvers × skeptical SDC detection
// (RBSP × preconditioning × SkP)
// ---------------------------------------------------------------------------

/// Preconditioned pipelined CG under the skeptical SDC stack — all three
/// latency levers at once: one nonblocking fused reduction per iteration,
/// carrying γ, δ, ‖r‖² *and* the skeptical check dots, overlapped with both
/// the SpMV and the (collective-free) preconditioner apply. With
/// [`BlockJacobi`](super::precond::BlockJacobi) this runs an
/// ill-conditioned problem at production-like iteration counts while SDC
/// detection still adds zero collectives.
pub fn pipelined_skeptical_pcg<'a, 'b, C: CommBackend>(
    comm: &'a mut C,
    a: &'b DistCsr,
    b: &DistVector,
    m: &mut dyn SpacePreconditioner<DistSpace<'a, 'b, C>>,
    opts: &DistSolveOptions,
    skeptic: &SkepticalConfig,
    fault: Option<SpmvFault>,
) -> Result<(DistSolveOutcome, ComposedDistReport)> {
    // Globally agreed ∞-norm bound for the norm-bound check; the check pair
    // the policy sees is the true (A-input, A-product) pair — the
    // preconditioned recurrence resolves `spmv_input` to `u = M⁻¹r` — so
    // the invariant ‖A·u‖ ≤ c·‖A‖·‖u‖ is unchanged by preconditioning.
    let norm_a = comm.allreduce_scalar(ReduceOp::Max, a.local_norm_inf())?;
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter)
        .with_operator_norm(norm_a);
    if let Some(f) = fault {
        space = space.with_fault(f);
    }
    let mut skeptical = SkepticalPolicy::new(*skeptic);
    let mut policies = PolicyStack::new(vec![&mut skeptical]);
    let (outcome, report) = run_cg(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut PipelinedCgStep::preconditioned(m),
        &mut policies,
    )?;
    let injections = space.injections();
    Ok((
        outcome.into_dist_outcome(opts.tol),
        ComposedDistReport {
            skeptical: skeptical.report(),
            policies: report.policy_overhead,
            injections,
            policy_restarts: report.policy_restarts,
        },
    ))
}

/// Right-preconditioned p(1)-pipelined GMRES under the skeptical SDC stack:
/// the pipelined Arnoldi runs on `A·M⁻¹`, the preconditioned correction
/// basis is maintained by linearity, and the skeptical check dots ride the
/// strategy's single reduction. The pairwise-orthogonality test is disabled
/// exactly as in [`pipelined_skeptical_gmres`] (the p(1) basis is recovered
/// by linearity and drifts legitimately).
pub fn pipelined_skeptical_pgmres<'a, 'b, C: CommBackend>(
    comm: &'a mut C,
    a: &'b DistCsr,
    b: &DistVector,
    m: &mut dyn SpacePreconditioner<DistSpace<'a, 'b, C>>,
    opts: &DistSolveOptions,
    skeptic: &SkepticalConfig,
    fault: Option<SpmvFault>,
) -> Result<(DistSolveOutcome, ComposedDistReport)> {
    let mut skeptic = *skeptic;
    skeptic.orthogonality_tol = f64::INFINITY;
    let norm_a = comm.allreduce_scalar(ReduceOp::Max, a.local_norm_inf())?;
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter)
        .with_operator_norm(norm_a);
    if let Some(f) = fault {
        space = space.with_fault(f);
    }
    let mut skeptical = SkepticalPolicy::new(skeptic);
    let mut policies = PolicyStack::new(vec![&mut skeptical]);
    let mut right = RightPrecond(m);
    let (outcome, report) = run_gmres(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut PipelinedOrtho::new(),
        &mut policies,
        Some(&mut right),
        &GmresFlavor::distributed(),
    )?;
    let injections = space.injections();
    Ok((
        outcome.into_dist_outcome(opts.tol),
        ComposedDistReport {
            skeptical: skeptical.report(),
            policies: report.policy_overhead,
            injections,
            policy_restarts: report.policy_restarts,
        },
    ))
}

// ---------------------------------------------------------------------------
// Scenario 2: FT-GMRES × ABFT-checked outer products (SRP × ABFT)
// ---------------------------------------------------------------------------

/// Report of one composed FT-GMRES + ABFT solve.
#[derive(Debug, Clone, Default)]
pub struct FtGmresAbftReport {
    /// ABFT verification overhead and detections.
    pub abft: PolicyOverhead,
    /// Cycle restarts triggered by ABFT detections.
    pub policy_restarts: usize,
}

/// FT-GMRES whose outer (reliable-tier) products are verified against the
/// clean matrix's Huang–Abraham checksums. `op` is the operator actually
/// applied by the outer iteration (wrap it in a fault injector for
/// experiments); `clean` provides both the checksum encoding and the source
/// for the unreliable inner solves, which corrupt at `cfg.fault_rate`
/// exactly as plain FT-GMRES.
pub fn ft_gmres_abft<O: Operator + ?Sized>(
    op: &O,
    clean: &CsrMatrix,
    b: &[f64],
    cfg: &FtGmresConfig,
    abft_tol: f64,
) -> (SolveOutcome, FtGmresReport, FtGmresAbftReport) {
    let mut abft = AbftSpmvPolicy::for_matrix(clean, abft_tol);
    let mut stack: PolicyStack<'_, SerialSpace<'_, O>> = PolicyStack::new(vec![&mut abft]);
    let (out, report, restarts) = ft_gmres_with_policies(op, clean, b, cfg, &mut stack);
    let abft_report = FtGmresAbftReport {
        abft: abft.overhead.clone(),
        policy_restarts: restarts,
    };
    (out, report, abft_report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeptical::faulty::{FaultTarget, FaultyOperator, InjectionPlan};
    use crate::skeptical::sdc_gmres::skeptical_gmres;
    use crate::solvers::common::{true_relative_residual, SolveOptions};
    use resilient_linalg::poisson2d;
    use resilient_runtime::{Runtime, RuntimeConfig};

    fn dist_opts() -> DistSolveOptions {
        DistSolveOptions::default()
            .with_tol(1e-9)
            .with_max_iters(400)
            .with_restart(30)
    }

    #[test]
    fn pipelined_sdc_clean_run_has_no_false_positives() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(4, move |comm| {
                let a = poisson2d(9, 9);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 2) as f64);
                let (out, report) = pipelined_skeptical_gmres(
                    comm,
                    &da,
                    &b,
                    &dist_opts(),
                    &SkepticalConfig::default(),
                    None,
                )?;
                Ok((
                    out.converged,
                    out.x.gather_global(comm)?,
                    report.skeptical.detections,
                    report.skeptical.local_checks_run,
                    report.policies.len(),
                ))
            })
            .unwrap_all();
        let a = poisson2d(9, 9);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 2) as f64).collect();
        for (converged, x, detections, checks, n_policies) in results {
            assert!(converged);
            assert_eq!(detections, 0, "clean pipelined run must not false-positive");
            assert!(checks > 0, "checks must actually run");
            assert_eq!(n_policies, 1);
            assert!(true_relative_residual(&a, &b, &x) < 1e-7);
        }
    }

    #[test]
    fn pipelined_sdc_detects_and_survives_injected_flip() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(4, move |comm| {
                let a = poisson2d(9, 9);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 2) as f64);
                let fault = SpmvFault {
                    rank: 1,
                    at_application: 6,
                    local_element: 3,
                    bit: 62,
                };
                let (out, report) = pipelined_skeptical_gmres(
                    comm,
                    &da,
                    &b,
                    &dist_opts(),
                    &SkepticalConfig::default(),
                    Some(fault),
                )?;
                // Injection counts are per-rank; sum them so every rank can
                // assert the flip actually happened somewhere.
                let injections =
                    comm.allreduce_scalar(ReduceOp::Sum, report.injections as f64)? as usize;
                let detections = comm
                    .allreduce_scalar(ReduceOp::Max, report.skeptical.detections as f64)?
                    as usize;
                Ok((
                    out.converged,
                    out.x.gather_global(comm)?,
                    injections,
                    detections,
                    report.policy_restarts,
                ))
            })
            .unwrap_all();
        let a = poisson2d(9, 9);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 2) as f64).collect();
        for (converged, x, injections, detections, _restarts) in results {
            assert_eq!(injections, 1, "the flip must have been injected");
            assert!(detections >= 1, "the severe flip must be detected");
            assert!(converged, "pipelined GMRES must survive the flip");
            assert!(true_relative_residual(&a, &b, &x) < 1e-7);
        }
    }

    #[test]
    fn pipelined_cg_sdc_clean_run_has_no_false_positives() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(4, move |comm| {
                let a = poisson2d(9, 9);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 2) as f64);
                let (out, report) = pipelined_skeptical_cg(
                    comm,
                    &da,
                    &b,
                    &dist_opts(),
                    &SkepticalConfig::default(),
                    None,
                )?;
                Ok((
                    out.converged,
                    out.x.gather_global(comm)?,
                    report.skeptical.detections,
                    report.skeptical.local_checks_run,
                    report.policies.len(),
                ))
            })
            .unwrap_all();
        let a = poisson2d(9, 9);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 2) as f64).collect();
        for (converged, x, detections, checks, n_policies) in results {
            assert!(converged, "pipelined skeptical CG must converge");
            assert_eq!(detections, 0, "clean pipelined CG must not false-positive");
            assert!(checks > 0, "checks must actually run");
            assert_eq!(n_policies, 1, "per-policy overhead must be reported");
            assert!(true_relative_residual(&a, &b, &x) < 1e-7);
        }
    }

    #[test]
    fn pipelined_cg_sdc_detects_and_survives_injected_flip() {
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(4, move |comm| {
                let a = poisson2d(9, 9);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 2) as f64);
                // This element's top exponent bit is clear at this
                // application, so the flip amplifies it by ~2^512 (a flip
                // striking a set exponent bit shrinks the value instead —
                // an SDC below the norm-bound's detection floor).
                let fault = SpmvFault {
                    rank: 1,
                    at_application: 4,
                    local_element: 3,
                    bit: 62,
                };
                let (out, report) = pipelined_skeptical_cg(
                    comm,
                    &da,
                    &b,
                    &dist_opts(),
                    &SkepticalConfig::default(),
                    Some(fault),
                )?;
                let injections =
                    comm.allreduce_scalar(ReduceOp::Sum, report.injections as f64)? as usize;
                let detections = comm
                    .allreduce_scalar(ReduceOp::Max, report.skeptical.detections as f64)?
                    as usize;
                Ok((
                    out.converged,
                    out.x.gather_global(comm)?,
                    injections,
                    detections,
                    report.policy_restarts,
                ))
            })
            .unwrap_all();
        let a = poisson2d(9, 9);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 2) as f64).collect();
        for (converged, x, injections, detections, restarts) in results {
            assert_eq!(injections, 1, "the flip must have been injected");
            assert!(detections >= 1, "the severe flip must be detected");
            assert!(restarts >= 1, "detection must rebuild the recurrence");
            assert!(converged, "pipelined CG must survive the flip");
            assert!(true_relative_residual(&a, &b, &x) < 1e-7);
        }
    }

    #[test]
    fn preconditioned_pipelined_skeptics_survive_flips_at_real_iteration_counts() {
        // The composed RBSP × preconditioning × SkP scenarios: block-Jacobi
        // collapses the iteration count on an ill-conditioned problem, the
        // skeptical stack still rides the single fused reduction, and an
        // injected exponent flip is detected and survived.
        use super::super::precond::BlockJacobi;
        use resilient_linalg::anisotropic2d;
        let rt = Runtime::new(RuntimeConfig::fast());
        let results = rt
            .run(4, move |comm| {
                let a = anisotropic2d(12, 12, 0.1, 100.0, 3);
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 4) as f64);
                let opts = DistSolveOptions::default()
                    .with_tol(1e-8)
                    .with_max_iters(2000)
                    .with_restart(40);
                let fault = SpmvFault {
                    rank: 1,
                    at_application: 3,
                    local_element: 2,
                    bit: 62,
                };
                // Clean baselines: no false positives at block-Jacobi
                // iteration counts.
                let mut bj = BlockJacobi::new(&da);
                let (cg_clean, cg_clean_rep) = pipelined_skeptical_pcg(
                    comm,
                    &da,
                    &b,
                    &mut bj,
                    &opts,
                    &SkepticalConfig::default(),
                    None,
                )?;
                let mut bj = BlockJacobi::new(&da);
                let (gm_clean, gm_clean_rep) = pipelined_skeptical_pgmres(
                    comm,
                    &da,
                    &b,
                    &mut bj,
                    &opts,
                    &SkepticalConfig::default(),
                    None,
                )?;
                // Unpreconditioned iteration count for comparison.
                let plain = crate::rbsp::cg::pipelined_cg(comm, &da, &b, &opts)?;
                // Faulted runs.
                let mut bj = BlockJacobi::new(&da);
                let (cg_hit, cg_hit_rep) = pipelined_skeptical_pcg(
                    comm,
                    &da,
                    &b,
                    &mut bj,
                    &opts,
                    &SkepticalConfig::default(),
                    Some(fault),
                )?;
                let injections =
                    comm.allreduce_scalar(ReduceOp::Sum, cg_hit_rep.injections as f64)? as usize;
                let detections = comm
                    .allreduce_scalar(ReduceOp::Max, cg_hit_rep.skeptical.detections as f64)?
                    as usize;
                Ok((
                    (cg_clean.converged, cg_clean.iterations, cg_clean_rep),
                    (gm_clean.converged, gm_clean.iterations, gm_clean_rep),
                    plain.iterations,
                    (cg_hit.converged, injections, detections),
                    cg_hit.x.gather_global(comm)?,
                ))
            })
            .unwrap_all();
        let a = anisotropic2d(12, 12, 0.1, 100.0, 3);
        let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 4) as f64).collect();
        for (cg_clean, gm_clean, plain_iters, cg_hit, x) in results {
            assert!(cg_clean.0, "clean preconditioned skeptical CG converges");
            assert!(gm_clean.0, "clean preconditioned skeptical GMRES converges");
            assert_eq!(cg_clean.2.skeptical.detections, 0, "no false positives");
            assert_eq!(gm_clean.2.skeptical.detections, 0, "no false positives");
            assert!(
                cg_clean.1 * 5 < plain_iters,
                "block-Jacobi must collapse iterations ({} vs {plain_iters})",
                cg_clean.1
            );
            let (converged, injections, detections) = cg_hit;
            assert_eq!(injections, 1, "the flip must have been injected");
            assert!(detections >= 1, "the flip must be detected");
            assert!(converged, "the solve must survive the flip");
            assert!(true_relative_residual(&a, &b, &x) < 1e-6);
        }
    }

    #[test]
    fn serial_and_pipelined_skeptics_agree_on_clean_checks() {
        // The same SkepticalConfig drives both the serial preset and the
        // composed pipelined scenario; a clean run must fire zero detections
        // in both (policy reuse across dot strategies is the point).
        let a = poisson2d(8, 8);
        let b = vec![1.0; a.nrows()];
        let (out, report) = skeptical_gmres(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tol(1e-9).with_max_iters(400),
            &SkepticalConfig::default(),
        );
        assert!(out.converged());
        assert_eq!(report.detections, 0);
    }

    #[test]
    fn ft_gmres_abft_detects_outer_corruption_and_converges() {
        let a = poisson2d(8, 8);
        let n = a.nrows();
        let b = vec![1.0; n];
        // Corrupt the *outer* (reliable-tier) SpMV — the blind spot plain
        // FT-GMRES has, since only inner results are validated.
        let plan = InjectionPlan {
            at_application: 2,
            target: FaultTarget::Element(n / 3),
            bit: Some(61),
        };
        let faulty = FaultyOperator::new(&a, Some(plan), 9);
        let cfg = FtGmresConfig {
            outer: SolveOptions::default()
                .with_tol(1e-8)
                .with_max_iters(80)
                .with_restart(20),
            ..FtGmresConfig::default()
        };
        let (out, report, abft) = ft_gmres_abft(&faulty, &a, &b, &cfg, 1e-9);
        assert!(
            faulty.injection().is_some(),
            "fault must have been injected"
        );
        assert!(abft.abft.detections >= 1, "ABFT must catch the outer flip");
        assert!(
            out.converged(),
            "solve must still converge: {:?}",
            out.reason
        );
        assert!(true_relative_residual(&a, &b, &out.x) < 1e-7);
        assert!(report.inner_iterations > 0);
    }

    #[test]
    fn ft_gmres_abft_clean_run_is_detection_free() {
        let a = poisson2d(7, 7);
        let b = vec![1.0; a.nrows()];
        let cfg = FtGmresConfig {
            outer: SolveOptions::default().with_tol(1e-8).with_max_iters(60),
            ..FtGmresConfig::default()
        };
        let (out, _report, abft) = ft_gmres_abft(&a, &a, &b, &cfg, 1e-9);
        assert!(out.converged());
        assert_eq!(abft.abft.detections, 0, "no ABFT false positives");
        assert!(abft.abft.checks_run > 0);
        assert!(abft.abft.check_flops > 0);
    }
}
