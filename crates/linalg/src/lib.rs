//! # resilient-linalg
//!
//! The dense and sparse linear-algebra substrate for the resilience suite:
//! level-1 vector kernels, dense matrices (GEMV/GEMM), CSR sparse matrices
//! (SpMV), model-problem generators (1-D/2-D/3-D Poisson, random SPD and
//! diagonally dominant matrices), Givens rotations with the progressive
//! Hessenberg least-squares solve used by GMRES, and the Huang–Abraham ABFT
//! checksum encodings used by the skeptical-programming kernels.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod checksum;
pub mod dense;
pub mod generators;
pub mod givens;
pub mod ops;
pub mod sell;
pub mod sparse;
pub mod vector;

pub use checksum::{checksummed_gemm, ChecksumVerdict, ChecksummedCsr, ChecksummedMatrix};
pub use dense::{DenseMatrix, LuFactors};
pub use generators::{
    anisotropic2d, diag_dominant_random, ones, poisson1d, poisson2d, poisson3d, random_vector,
    spd_random,
};
pub use givens::{Givens, HessenbergLsq};
pub use ops::{auto_ops, scalar_ops, simd_ops, LocalOps, ScalarOps};
pub use sell::{SellMatrix, SELL_C, SELL_DEFAULT_SIGMA};
pub use sparse::{CooMatrix, CsrMatrix};
