//! Baseline SpMV / GEMM throughput of the linear-algebra substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resilient_linalg::{poisson2d, DenseMatrix};
use std::time::Duration;

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    for &n in &[32usize, 64] {
        let a = poisson2d(n, n);
        let x = vec![1.0; a.nrows()];
        group.bench_with_input(BenchmarkId::new("poisson2d", n * n), &n, |b, _| {
            b.iter(|| std::hint::black_box(a.spmv(&x)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gemm");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    for &n in &[64usize, 96] {
        let a = DenseMatrix::random(n, n, &mut rng);
        let b_m = DenseMatrix::random(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(a.gemm(&b_m)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
