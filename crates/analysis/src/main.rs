//! CLI entry point for the repo-invariant static analyzer.
//!
//! Usage:
//!
//! ```text
//! resilient-analysis [--root <dir>]     # analyze the whole tree (default: cwd)
//! resilient-analysis <file.rs>...       # analyze specific files
//! resilient-analysis --list-rules       # print the rule catalogue
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use resilient_analysis::{all_rules, analyze_files, analyze_tree};

fn usage() -> &'static str {
    "usage: resilient-analysis [--list-rules] [--root <dir>] [<file.rs>...]\n\
     \n\
     With no arguments, analyzes every .rs file under the current directory\n\
     (skipping target/, vendor/ and the self-test fixtures). Exit code 0 on a\n\
     clean tree, 1 on findings, 2 on usage or I/O errors."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list-rules" => {
                for r in all_rules() {
                    println!("{:<22} {}", r.name(), r.summary());
                    println!("{:<22}   scope: {}", "", r.scope());
                }
                println!(
                    "\nwaive a single finding with a comment on (or directly above) its line:\n  \
                     // lint:allow(<rule>): <why this site is a sanctioned exception>"
                );
                return ExitCode::SUCCESS;
            }
            "--root" => match it.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            _ if a.starts_with('-') => {
                eprintln!("unknown flag `{a}`\n{}", usage());
                return ExitCode::from(2);
            }
            _ => files.push(a),
        }
    }
    if !files.is_empty() && root.is_some() {
        eprintln!(
            "--root and explicit files are mutually exclusive\n{}",
            usage()
        );
        return ExitCode::from(2);
    }
    let analysis = if files.is_empty() {
        let dir = root.unwrap_or_else(|| PathBuf::from("."));
        if !dir.is_dir() {
            eprintln!("not a directory: {}", dir.display());
            return ExitCode::from(2);
        }
        analyze_tree(&dir)
    } else {
        match analyze_files(&files) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    };
    print!("{}", analysis.report());
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
