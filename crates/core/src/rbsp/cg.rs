//! Distributed conjugate gradients: bulk-synchronous vs. pipelined.
//!
//! Both entry points are presets of the unified kernel
//! ([`crate::kernel`]) over a [`DistSpace`]: the bulk-synchronous variant
//! uses the [`FusedCgStep`] recurrence (two blocking all-reduces per
//! iteration), the pipelined variant the [`PipelinedCgStep`] recurrence
//! (one nonblocking fused all-reduce overlapped with the SpMV).

use resilient_runtime::{CommBackend, Result};

use super::{BlockSolveOutcome, DistSolveOptions, DistSolveOutcome};
use crate::distributed::{DistCsr, DistMultiVector, DistVector};
use crate::kernel::{
    run_block_cg, run_cg, BlockCgMode, DistSpace, FusedCgStep, PipelinedCgStep, PolicyStack,
    SpacePreconditioner,
};

/// Classical distributed CG. Each iteration performs one SpMV (neighborhood
/// communication) and **two blocking all-reduces** — the structure whose
/// latency sensitivity §II-B describes.
///
/// Preset: unified kernel × [`FusedCgStep`] × empty policy stack over a
/// [`DistSpace`].
pub fn dist_cg<C: CommBackend>(
    comm: &mut C,
    a: &DistCsr,
    b: &DistVector,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let (outcome, _report) = run_cg(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut FusedCgStep::new(),
        &mut PolicyStack::empty(),
    )?;
    Ok(outcome.into_dist_outcome(opts.tol))
}

/// Pipelined CG (Ghysels & Vanroose): algebraically equivalent to CG but with
/// a **single nonblocking fused all-reduce** per iteration, posted before the
/// SpMV and completed after it, so the global reduction's latency is hidden
/// behind the matrix-vector product and the extra per-iteration work.
///
/// Preset: unified kernel × [`PipelinedCgStep`] × empty policy stack over a
/// [`DistSpace`].
pub fn pipelined_cg<C: CommBackend>(
    comm: &mut C,
    a: &DistCsr,
    b: &DistVector,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let (outcome, _report) = run_cg(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut PipelinedCgStep::new(),
        &mut PolicyStack::empty(),
    )?;
    Ok(outcome.into_dist_outcome(opts.tol))
}

/// Preconditioned distributed CG: the z-shifted [`FusedCgStep`] recurrence
/// with `r·z` and `r·r` fused into its second reduction, so the schedule
/// stays at **two blocking all-reduces per iteration** — preconditioning
/// (e.g. [`BlockJacobi`](crate::kernel::BlockJacobi), whose applies are
/// purely local) adds zero collectives. Under
/// [`IdentityPrecond`](crate::kernel::IdentityPrecond) the solve is
/// bit-identical to [`dist_cg`].
///
/// Preset: unified kernel × preconditioned [`FusedCgStep`] × empty policy
/// stack over a [`DistSpace`].
pub fn dist_pcg<'a, 'b, C: CommBackend>(
    comm: &'a mut C,
    a: &'b DistCsr,
    b: &DistVector,
    m: &mut dyn SpacePreconditioner<DistSpace<'a, 'b, C>>,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let (outcome, _report) = run_cg(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut FusedCgStep::preconditioned(m),
        &mut PolicyStack::empty(),
    )?;
    Ok(outcome.into_dist_outcome(opts.tol))
}

/// Preconditioned pipelined CG (Ghysels & Vanroose): the preconditioner
/// apply joins the SpMV in the overlap region of the **single nonblocking
/// fused all-reduce** (which additionally carries ‖r‖², keeping the
/// convergence test on the true residual). Under
/// [`IdentityPrecond`](crate::kernel::IdentityPrecond) the solve is
/// bit-identical to [`pipelined_cg`].
///
/// Preset: unified kernel × preconditioned [`PipelinedCgStep`] × empty
/// policy stack over a [`DistSpace`].
pub fn pipelined_pcg<'a, 'b, C: CommBackend>(
    comm: &'a mut C,
    a: &'b DistCsr,
    b: &DistVector,
    m: &mut dyn SpacePreconditioner<DistSpace<'a, 'b, C>>,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let (outcome, _report) = run_cg(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        &mut PipelinedCgStep::preconditioned(m),
        &mut PolicyStack::empty(),
    )?;
    Ok(outcome.into_dist_outcome(opts.tol))
}

/// Block (multi-RHS) preconditioned distributed CG: all `k = b.k()`
/// right-hand sides advance in lockstep, with **one** SpMM sweep and the
/// same **two blocking all-reduces per iteration** as [`dist_pcg`] —
/// batched payloads make the collective count independent of `k`. At
/// `k = 1` the solve is bit-identical to [`dist_pcg`]. Converged columns
/// freeze (no further arithmetic charges) but keep their payload slots, so
/// the collective schedule stays rank-symmetric.
///
/// Preset: block kernel ([`run_block_cg`], [`BlockCgMode::Fused`]) × empty
/// policy stack over a [`DistSpace`].
pub fn dist_block_pcg<'a, 'b, C: CommBackend>(
    comm: &'a mut C,
    a: &'b DistCsr,
    b: &DistMultiVector,
    m: &mut dyn SpacePreconditioner<DistSpace<'a, 'b, C>>,
    opts: &DistSolveOptions,
) -> Result<BlockSolveOutcome> {
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let (outcome, _report) = run_block_cg(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        BlockCgMode::Fused,
        m,
        &mut PolicyStack::empty(),
    )?;
    Ok(outcome.into_block_solve_outcome())
}

/// Block (multi-RHS) preconditioned pipelined CG: the batched twin of
/// [`pipelined_pcg`] — a **single nonblocking all-reduce** per iteration
/// carries every column's recurrence scalars and overlaps the
/// preconditioner applies and the SpMM sweep. At `k = 1` the solve is
/// bit-identical to [`pipelined_pcg`].
///
/// Preset: block kernel ([`run_block_cg`], [`BlockCgMode::Pipelined`]) ×
/// empty policy stack over a [`DistSpace`].
pub fn pipelined_block_pcg<'a, 'b, C: CommBackend>(
    comm: &'a mut C,
    a: &'b DistCsr,
    b: &DistMultiVector,
    m: &mut dyn SpacePreconditioner<DistSpace<'a, 'b, C>>,
    opts: &DistSolveOptions,
) -> Result<BlockSolveOutcome> {
    let mut space = DistSpace::new(comm, a)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let (outcome, _report) = run_block_cg(
        &mut space,
        b,
        None,
        &opts.solve_options(),
        BlockCgMode::Pipelined,
        m,
        &mut PolicyStack::empty(),
    )?;
    Ok(outcome.into_block_solve_outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::poisson2d;
    use resilient_runtime::{LatencyModel, Runtime, RuntimeConfig};

    fn solve_both(ranks: usize, nx: usize) -> Vec<(Vec<f64>, Vec<f64>, usize, usize)> {
        let rt = Runtime::new(RuntimeConfig::fast());
        rt.run(ranks, move |comm| {
            let a = poisson2d(nx, nx);
            let n = a.nrows();
            let da = DistCsr::from_global(comm, &a)?;
            let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 3) as f64);
            let opts = DistSolveOptions::default()
                .with_tol(1e-9)
                .with_max_iters(400);
            let classic = dist_cg(comm, &da, &b, &opts)?;
            let pipelined = pipelined_cg(comm, &da, &b, &opts)?;
            assert!(classic.converged, "classic CG must converge");
            assert!(pipelined.converged, "pipelined CG must converge");
            Ok((
                classic.x.gather_global(comm)?,
                pipelined.x.gather_global(comm)?,
                classic.iterations,
                pipelined.iterations,
            ))
        })
        .unwrap_all()
    }

    #[test]
    fn both_variants_solve_the_system_identically() {
        let results = solve_both(4, 10);
        let a = poisson2d(10, 10);
        for (classic_x, pipelined_x, classic_iters, pipelined_iters) in results {
            // Verify against the serial solution via the residual.
            let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 3) as f64).collect();
            let res_c = crate::solvers::common::true_relative_residual(&a, &b, &classic_x);
            let res_p = crate::solvers::common::true_relative_residual(&a, &b, &pipelined_x);
            assert!(res_c < 1e-7, "classic residual {res_c}");
            assert!(res_p < 1e-7, "pipelined residual {res_p}");
            // Same mathematics: iteration counts agree to within a couple.
            assert!(
                (classic_iters as i64 - pipelined_iters as i64).abs() <= 3,
                "iteration counts diverged: {classic_iters} vs {pipelined_iters}"
            );
        }
    }

    #[test]
    fn pipelined_cg_is_faster_under_latency() {
        // With substantial collective latency and overlap-able work, the
        // pipelined variant must finish in less virtual time.
        let mut cfg = RuntimeConfig::fast();
        cfg.latency = LatencyModel {
            alpha: 5.0e-4,
            beta: 0.0,
            gamma: 0.0,
        };
        cfg.seconds_per_flop = 1.0e-9;
        let rt = Runtime::new(cfg);
        let times = rt
            .run(8, move |comm| {
                let a = poisson2d(16, 16);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| (i as f64 * 0.1).cos());
                let opts = DistSolveOptions::default()
                    .with_tol(1e-8)
                    .with_max_iters(200);
                let t0 = comm.now();
                let classic = dist_cg(comm, &da, &b, &opts)?;
                let t1 = comm.now();
                let pipelined = pipelined_cg(comm, &da, &b, &opts)?;
                let t2 = comm.now();
                assert!(classic.converged && pipelined.converged);
                Ok((t1 - t0, t2 - t1))
            })
            .unwrap_all();
        for (classic_time, pipelined_time) in times {
            assert!(
                pipelined_time < classic_time,
                "pipelined CG should hide collective latency: classic={classic_time}, pipelined={pipelined_time}"
            );
        }
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let results = solve_both(1, 6);
        assert_eq!(results.len(), 1);
    }
}
