//! Experiment E11 — block multi-RHS batching economics: one SpMM sweep and
//! one allreduce serving the whole batch, measured against k sequential
//! single-RHS solves, cold vs warm preconditioner-setup cache.
//!
//! Three claims, all in the simulator's deterministic virtual time:
//!
//! * **Collectives do not scale with k.** The batched payload keeps the
//!   allreduce schedule at the single-RHS count (fused: 2/iter,
//!   pipelined: 1/iter) for k ∈ {1, 8} alike — asserted exactly.
//! * **Batching amortises latency.** At k = 8 the block solve pays one
//!   latency-α per collective where the sequential baseline pays eight,
//!   so aggregate throughput grows near-linearly in k once latency
//!   dominates.
//! * **The setup cache retires the refactorization.** Warm-cache block
//!   solves skip the per-solve block-Jacobi LU entirely; the headline
//!   assert pins warm batched throughput ≥ 2× the k-sequential cold
//!   baseline at k = 8 on ≥ 2 ranks.
//!
//! Output: a table plus one `JSON:` line per cell (hand-rolled — the
//! workspace carries no JSON dependency). Pass `--json` to emit a single
//! machine-readable JSON array instead (the format checked in as
//! `BENCH_block_batch.json`), `--smoke` for a CI-sized grid. The headline
//! asserts run in every mode: virtual time is deterministic, so they are
//! safe on loaded CI machines.

use resilience::prelude::*;
use resilient_bench::{fmt_g, fmt_ratio, Table};
use resilient_linalg::poisson2d;
use resilient_runtime::{LatencyModel, Runtime, RuntimeConfig};

/// The latency regime of `exp_latency`'s pipelining story: collective
/// latency is the scarce resource, arithmetic is cheap but not free.
fn config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::fast();
    cfg.latency = LatencyModel {
        alpha: 5.0e-4,
        beta: 0.0,
        gamma: 0.0,
    };
    cfg.seconds_per_flop = 1.0e-9;
    cfg
}

/// Distinct right-hand sides so the columns are genuinely independent
/// solves (no zero columns: every lane must stay active until tolerance).
fn rhs(c: usize, i: usize) -> f64 {
    ((i * (c + 1)) as f64 * 0.13).sin() + 1.0 + c as f64
}

/// Virtual seconds for (k sequential cold solves, block solve cold cache,
/// block solve warm cache) at one grid cell, plus the block iteration count.
fn measure(pipelined: bool, ranks: usize, k: usize, nx: usize) -> (f64, f64, f64, usize) {
    let rt = Runtime::new(config());
    let per_rank = rt
        .run(ranks, move |comm| {
            let a = poisson2d(nx, nx);
            let n = a.nrows();
            let da = DistCsr::from_global(comm, &a)?;
            let bk = DistMultiVector::from_fn(comm, n, k, rhs);
            let opts = DistSolveOptions::default()
                .with_tol(1e-8)
                .with_max_iters(400);

            // Baseline: k sequential single-RHS solves, each paying its own
            // allreduce schedule and its own block-Jacobi factorization.
            let t0 = comm.now();
            for c in 0..k {
                let bc = bk.column(c);
                let mut m = BlockJacobi::new(&da);
                let out = if pipelined {
                    pipelined_pcg(comm, &da, &bc, &mut m, &opts)?
                } else {
                    dist_pcg(comm, &da, &bc, &mut m, &opts)?
                };
                assert!(out.converged, "sequential solve {c} must converge");
            }
            let t1 = comm.now();

            // Block solve, cold cache: one SpMM sweep and one batched
            // allreduce payload per reduction, but the LU is still paid.
            let mut cache = SetupCache::new();
            let mut m = cache.block_jacobi(&da);
            let cold = if pipelined {
                pipelined_block_pcg(comm, &da, &bk, &mut m, &opts)?
            } else {
                dist_block_pcg(comm, &da, &bk, &mut m, &opts)?
            };
            let t2 = comm.now();

            // Block solve, warm cache: the fingerprint hit hands back the
            // memoized factors, so setup flops drop to zero.
            let mut m = cache.block_jacobi(&da);
            let warm = if pipelined {
                pipelined_block_pcg(comm, &da, &bk, &mut m, &opts)?
            } else {
                dist_block_pcg(comm, &da, &bk, &mut m, &opts)?
            };
            let t3 = comm.now();

            assert!(cold.all_converged() && warm.all_converged());
            assert_eq!(
                (cache.hits(), cache.misses()),
                (1, 1),
                "second block solve must hit the setup cache"
            );
            Ok((t1 - t0, t2 - t1, t3 - t2, warm.iterations))
        })
        .unwrap_all();
    // Virtual clocks agree at the final barrier; take the slowest rank.
    let max = |i: usize| {
        per_rank
            .iter()
            .map(|t| [t.0, t.1, t.2][i])
            .fold(0.0f64, f64::max)
    };
    (max(0), max(1), max(2), per_rank[0].3)
}

/// Exact allreduces per iteration of a pinned (tol = 1e-30) block solve:
/// collective counts of a 12- and a 5-iteration run, divided out.
fn allreduces_per_iter(pipelined: bool, ranks: usize, k: usize) -> u64 {
    let count = |max_iters: usize| -> u64 {
        let rt = Runtime::new(RuntimeConfig::fast());
        rt.run(ranks, move |comm| {
            let a = poisson2d(8, 8);
            let n = a.nrows();
            let da = DistCsr::from_global(comm, &a)?;
            let bk = DistMultiVector::from_fn(comm, n, k, rhs);
            let opts = DistSolveOptions::default()
                .with_tol(1e-30)
                .with_max_iters(max_iters);
            let mut m = BlockJacobi::new(&da);
            let before = comm.snapshot_stats().collectives;
            let out = if pipelined {
                pipelined_block_pcg(comm, &da, &bk, &mut m, &opts)?
            } else {
                dist_block_pcg(comm, &da, &bk, &mut m, &opts)?
            };
            assert_eq!(out.iterations, max_iters, "pinned run must not converge");
            Ok(comm.snapshot_stats().collectives - before)
        })
        .unwrap_all()[0]
    };
    let (short, long) = (count(5), count(12));
    assert_eq!(
        (long - short) % 7,
        0,
        "collective count must be linear in iterations"
    );
    (long - short) / 7
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let (rank_grid, k_grid, nx): (&[usize], &[usize], usize) = if smoke {
        (&[1, 2], &[1, 8], 10)
    } else {
        (&[1, 2, 4, 8], &[1, 2, 4, 8], 16)
    };
    let mut records: Vec<String> = Vec::new();

    // Claim 1: the allreduce schedule is independent of k — exactly.
    let mut table_coll = Table::new(
        "E11a: allreduces per block-CG iteration (pinned runs, 4 ranks)",
        &["mode", "k", "allreduces/iter"],
    );
    let coll_ranks = if smoke { 2 } else { 4 };
    for (mode, pipelined, expected) in [("fused", false, 2u64), ("pipelined", true, 1u64)] {
        let per_k: Vec<u64> = [1usize, 8]
            .iter()
            .map(|&k| {
                let per_iter = allreduces_per_iter(pipelined, coll_ranks, k);
                table_coll.row(vec![mode.into(), k.to_string(), per_iter.to_string()]);
                records.push(format!(
                    "{{\"experiment\":\"block_batch\",\"metric\":\"allreduces_per_iter\",\"mode\":\"{mode}\",\"ranks\":{coll_ranks},\"k\":{k},\"value\":{per_iter}}}"
                ));
                per_iter
            })
            .collect();
        assert_eq!(
            per_k[0], per_k[1],
            "{mode}: k=8 allreduces/iter must equal the k=1 count"
        );
        assert_eq!(per_k[0], expected, "{mode}: allreduces/iter regressed");
    }

    // Claims 2 and 3: batching amortises latency, the cache retires setup.
    let mut table = Table::new(
        "E11b: batched multi-RHS throughput vs k sequential solves (virtual time)",
        &[
            "mode",
            "ranks",
            "k",
            "seq cold s",
            "block cold s",
            "block warm s",
            "warm speedup",
        ],
    );
    let mut headline = f64::NAN;
    for (mode, pipelined) in [("fused", false), ("pipelined", true)] {
        for &ranks in rank_grid {
            for &k in k_grid {
                let (seq_cold, block_cold, block_warm, iters) = measure(pipelined, ranks, k, nx);
                let speedup = seq_cold / block_warm;
                if !pipelined && ranks == 2 && k == 8 {
                    headline = speedup;
                }
                table.row(vec![
                    mode.into(),
                    ranks.to_string(),
                    k.to_string(),
                    fmt_g(seq_cold),
                    fmt_g(block_cold),
                    fmt_g(block_warm),
                    fmt_ratio(speedup),
                ]);
                records.push(format!(
                    "{{\"experiment\":\"block_batch\",\"metric\":\"throughput\",\"mode\":\"{mode}\",\"ranks\":{ranks},\"k\":{k},\"iters\":{iters},\"seq_cold_s\":{seq_cold:.6e},\"block_cold_s\":{block_cold:.6e},\"block_warm_s\":{block_warm:.6e},\"warm_speedup\":{speedup:.3}}}"
                ));
                // Batch-width-1 sanity: the block path must not be slower
                // than its own single-RHS twin by more than bookkeeping.
                if k == 1 {
                    assert!(
                        block_warm <= seq_cold,
                        "{mode} k=1 at {ranks} ranks: warm block solve slower than dist solve"
                    );
                }
            }
        }
    }

    // Headline assert (acceptance criterion): warm-cache batched throughput
    // beats the k-sequential cold baseline ≥ 2× at k = 8 on ≥ 2 ranks. Both
    // grids include that cell, so this holds in smoke mode too.
    assert!(
        headline >= 2.0,
        "headline regressed: warm k=8 block speedup {headline:.2}x < 2x on 2 ranks"
    );

    if json {
        println!("[\n{}\n]", records.join(",\n"));
    } else {
        table_coll.emit("block_batch_collectives");
        table.emit("block_batch");
        for r in &records {
            println!("JSON: {r}");
        }
        println!(
            "headline: warm-cache k=8 block solve {:.1}x faster than 8 sequential cold solves (2 ranks, fused)",
            headline
        );
    }
}
