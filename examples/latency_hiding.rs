//! Latency hiding with pipelined Krylov methods (RBSP): classic vs pipelined
//! CG and GMRES on a simulated machine with slow collectives and OS noise.
//!
//! Run with: `cargo run --example latency_hiding`

use resilience::prelude::*;
use resilient_linalg::poisson2d;
use resilient_runtime::{LatencyModel, NoiseConfig, Runtime, RuntimeConfig};

/// Per-rank result row: the four solve times then the four iteration counts.
type SolveRow = (f64, f64, f64, f64, usize, usize, usize, usize);

fn main() {
    let ranks = 16;
    let mut cfg = RuntimeConfig::fast().with_seed(3);
    cfg.latency = LatencyModel {
        alpha: 2.0e-4,
        beta: 1e-9,
        gamma: 1e-9,
    };
    cfg.seconds_per_flop = 1e-9;
    cfg.noise = NoiseConfig::exponential(1000.0, 1.0e-4);
    let rt = Runtime::new(cfg);

    let times = rt
        .run(ranks, move |comm| {
            let a = poisson2d(24, 24);
            let da = DistCsr::from_global(comm, &a)?;
            let b = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 3) as f64);
            let mut opts = DistSolveOptions::default()
                .with_tol(1e-7)
                .with_max_iters(300);
            opts.extra_work_per_iter = 1.0e-4;
            let t0 = comm.now();
            let c = dist_cg(comm, &da, &b, &opts)?;
            let t1 = comm.now();
            let p = pipelined_cg(comm, &da, &b, &opts)?;
            let t2 = comm.now();
            let g = dist_gmres(comm, &da, &b, &opts)?;
            let t3 = comm.now();
            let pg = pipelined_gmres(comm, &da, &b, &opts)?;
            let t4 = comm.now();
            Ok((
                t1 - t0,
                t2 - t1,
                t3 - t2,
                t4 - t3,
                c.iterations,
                p.iterations,
                g.iterations,
                pg.iterations,
            ))
        })
        .unwrap_all();

    let agg = |f: &dyn Fn(&SolveRow) -> f64| times.iter().map(f).fold(0.0f64, f64::max);
    let (cg_t, pcg_t, g_t, pg_t) = (agg(&|r| r.0), agg(&|r| r.1), agg(&|r| r.2), agg(&|r| r.3));
    println!("16 simulated ranks, alpha = 200 us, exponential noise, 2-D Poisson n = 576\n");
    println!("{:<22} {:>14} {:>10}", "solver", "virtual time", "speedup");
    println!("{:<22} {:>12.4} s {:>10}", "CG (blocking)", cg_t, "1.00x");
    println!(
        "{:<22} {:>12.4} s {:>9.2}x",
        "pipelined CG",
        pcg_t,
        cg_t / pcg_t
    );
    println!("{:<22} {:>12.4} s {:>10}", "GMRES (blocking)", g_t, "1.00x");
    println!("{:<22} {:>12.4} s {:>9.2}x", "p(1)-GMRES", pg_t, g_t / pg_t);
    println!(
        "\nIterations (rank 0): CG {} / {}, GMRES {} / {}",
        times[0].4, times[0].5, times[0].6, times[0].7
    );
}
