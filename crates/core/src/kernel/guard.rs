//! Cheap consistency guard over preconditioner applies.
//!
//! Until the fault-campaign work, `BlockJacobi::apply_into` was the one
//! data path no [`ResiliencePolicy`] ever observed: a bit flip in the
//! preconditioned vector `z = M⁻¹·r` entered the recurrence unchecked, and
//! for CG the only downstream signals are the *preconditioned* dots the
//! corrupted vector itself feeds — the classic silent-wrong-answer threat.
//! [`PrecondGuardPolicy`] closes that hole through the
//! [`after_precond`](ResiliencePolicy::after_precond) hook: one fused
//! global reduction of `(‖z‖², ‖r‖²)` per guarded apply, detecting
//! non-finite output and amplification beyond a configurable bound on
//! `‖z‖²/‖r‖²` (for a fixed preconditioner `‖M⁻¹‖` bounds that ratio; an
//! exponent-bit upset blows past any reasonable bound).
//!
//! The decision is derived from globally reduced scalars, so every rank
//! takes the same branch — the guard is rank-symmetric by construction and
//! composes with shrink recovery and replacement ranks.

use super::policy::{DetectionResponse, IterCtx, PolicyAction, PolicyOverhead, ResiliencePolicy};
use super::space::KrylovSpace;
use resilient_runtime::Result;

/// Guards every in-iteration preconditioner apply with a fused
/// finiteness/amplification check; see the module docs.
#[derive(Debug, Clone)]
pub struct PrecondGuardPolicy {
    /// Detection bound on `‖z‖²/‖r‖²`.
    ratio_bound: f64,
    response: DetectionResponse,
    overhead: PolicyOverhead,
}

impl Default for PrecondGuardPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl PrecondGuardPolicy {
    /// Squared-amplification bound of the default guard: generous enough
    /// that no legitimate block-Jacobi apply in the suite approaches it
    /// (the factored blocks are diagonally dominant), tight enough that an
    /// exponent-bit flip overshoots it by hundreds of orders of magnitude.
    pub const DEFAULT_RATIO_BOUND: f64 = 1e12;

    /// A guard with the default amplification bound and `Restart` response.
    pub fn new() -> Self {
        Self {
            ratio_bound: Self::DEFAULT_RATIO_BOUND,
            response: DetectionResponse::Restart,
            overhead: PolicyOverhead {
                name: "precond-guard",
                ..PolicyOverhead::default()
            },
        }
    }

    /// Builder: custom bound on `‖z‖²/‖r‖²`.
    pub fn with_ratio_bound(mut self, bound: f64) -> Self {
        self.ratio_bound = bound;
        self
    }

    /// Builder: custom detection response (default `Restart`).
    pub fn with_response(mut self, response: DetectionResponse) -> Self {
        self.response = response;
        self
    }

    /// Detections reported so far.
    pub fn detections(&self) -> usize {
        self.overhead.detections
    }
}

impl<S: KrylovSpace> ResiliencePolicy<S> for PrecondGuardPolicy {
    fn name(&self) -> &'static str {
        "precond-guard"
    }

    fn response(&self) -> DetectionResponse {
        self.response
    }

    fn after_precond(
        &mut self,
        space: &mut S,
        _ctx: &IterCtx,
        r: &S::Vector,
        z: &S::Vector,
    ) -> Result<PolicyAction> {
        self.overhead.checks_run += 1;
        self.overhead.check_flops += 4 * space.local_len(r);
        // One blocking collective for both squared norms; the hook contract
        // guarantees no strategy reduction is in flight here, and every
        // rank receives the same reduced values (symmetric decision).
        let vals = space.fused_pairs(&[(z, z), (r, r)], 2)?;
        let (zz, rr) = (vals[0], vals[1]);
        // Non-finite squared norms catch NaN/Inf anywhere in z or r; the
        // amplification test catches large-but-finite corruption, including
        // nonzero output from zero input (0 · bound = 0 < zz).
        let corrupt = !zz.is_finite() || !rr.is_finite() || zz > self.ratio_bound * rr;
        if corrupt {
            self.overhead.detections += 1;
            return Ok(PolicyAction::Detected);
        }
        Ok(PolicyAction::Continue)
    }

    fn overhead(&self) -> PolicyOverhead {
        self.overhead.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SerialSpace;
    use resilient_linalg::poisson2d;

    fn ctx() -> IterCtx {
        IterCtx {
            iteration: 1,
            cycle_step: 1,
            cycle: 0,
            relres: 1.0,
            tol: 1e-8,
        }
    }

    #[test]
    fn guard_passes_healthy_applies_and_flags_corruption() {
        let a = poisson2d(4, 4);
        let mut space = SerialSpace::new(&a);
        let mut guard = PrecondGuardPolicy::new();
        let r: Vec<f64> = (0..16).map(|i| 1.0 + (i as f64 * 0.7).cos()).collect();

        // A healthy apply (identity-sized output) passes.
        let z = r.clone();
        let act = guard.after_precond(&mut space, &ctx(), &r, &z).unwrap();
        assert_eq!(act, PolicyAction::Continue);

        // NaN output is detected.
        let mut z_nan = r.clone();
        z_nan[3] = f64::NAN;
        let act = guard.after_precond(&mut space, &ctx(), &r, &z_nan).unwrap();
        assert_eq!(act, PolicyAction::Detected);

        // Amplification past the bound is detected (an exponent-bit flip
        // lands ~1e150 above any input of order one).
        let mut z_big = r.clone();
        z_big[0] = 1e200;
        let act = guard.after_precond(&mut space, &ctx(), &r, &z_big).unwrap();
        assert_eq!(act, PolicyAction::Detected);

        // Nonzero output from zero input is detected.
        let zero = vec![0.0; 16];
        let tiny = {
            let mut t = vec![0.0; 16];
            t[5] = 1e-30;
            t
        };
        let act = guard
            .after_precond(&mut space, &ctx(), &zero, &tiny)
            .unwrap();
        assert_eq!(act, PolicyAction::Detected);

        assert_eq!(guard.detections(), 3);
        let oh = ResiliencePolicy::<SerialSpace<'_, resilient_linalg::CsrMatrix>>::overhead(&guard);
        assert_eq!(oh.checks_run, 4);
        assert_eq!(oh.name, "precond-guard");
    }
}
