//! The unified GMRES-family kernel: one restarted Arnoldi/Givens iteration
//! core parameterized by an orthogonalization (dot) strategy, an optional
//! flexible right preconditioner and a resilience-policy stack.
//!
//! The three [`OrthoStrategy`] implementations reproduce, operation for
//! operation, the arithmetic of the legacy silos they replaced:
//!
//! * [`MgsOrtho`] — modified Gram–Schmidt with immediate (blocking) dots:
//!   the serial `gmres`/`fgmres`/`skeptical_gmres` inner loop;
//! * [`CgsOrtho`] — classical Gram–Schmidt with one fused blocking
//!   reduction for the projection coefficients and one for the norm: the
//!   bulk-synchronous distributed GMRES;
//! * [`PipelinedOrtho`] — the p(1) pipelining of Ghysels, Ashby, Meerbergen
//!   & Vanroose: a single nonblocking fused reduction overlapped with the
//!   *speculative* next product, basis and products recovered by linearity.
//!
//! Control-flow details in which the legacy solvers differed (where
//! divergence is detected, whether a happy breakdown terminates the solve,
//! whether the cycle-end residual is verified against the operator) are
//! captured by [`GmresFlavor`] so each preset keeps its exact observable
//! behaviour.

use resilient_linalg::HessenbergLsq;
use resilient_runtime::Result;

use super::policy::{
    CheckVectors, DetectionResponse, FailureEvent, PolicyStack, RecoveryAction, SolutionProbe,
    StackOutcome,
};
use super::space::KrylovSpace;
use super::{KernelOutcome, KernelReport, SolveProgress};
use crate::solvers::common::{SolveOptions, StopReason};

/// A possibly nonlinear, possibly unreliable right preconditioner
/// `z ≈ A⁻¹·v` applied through a space (the flexible-GMRES inner solve).
pub trait FlexibleRight<S: KrylovSpace> {
    /// Apply the inner solver to `v`.
    fn apply(&mut self, space: &mut S, v: &S::Vector) -> Result<S::Vector>;
    /// Name for reporting.
    fn name(&self) -> &'static str {
        "flexible"
    }
}

/// One restart cycle's worth of Krylov state.
pub struct GmresCycle<V> {
    /// Orthonormal basis v₀ … v_k.
    pub basis: Vec<V>,
    /// Flexibly preconditioned vectors z₀ … z_{k−1} (flexible mode only).
    pub z_basis: Vec<V>,
    /// Operator products A·v₀ … A·v_k (pipelined mode only).
    pub products: Vec<V>,
    /// The running Hessenberg least-squares factorization.
    pub lsq: HessenbergLsq,
    /// Cycle-initial residual norm β.
    pub beta: f64,
}

impl<V> GmresCycle<V> {
    /// Completed Arnoldi steps in this cycle.
    pub fn steps(&self) -> usize {
        self.lsq.len()
    }
}

/// What one orthogonalization step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The cycle was extended by one column.
    Extended,
    /// Happy breakdown: the column was consumed but the subspace is
    /// invariant; the cycle is over.
    Breakdown,
    /// A record-only policy detection consumed the step without extending
    /// (the legacy skeptical "observe but keep going" semantics).
    Skipped,
    /// A policy detected corruption and demands the given response
    /// (`Restart` or `Abort`; `RecordOnly` never surfaces here).
    Detected(DetectionResponse),
}

/// Orthogonalization/dot scheduling strategy for the GMRES kernel.
pub trait OrthoStrategy<S: KrylovSpace> {
    /// Called once per restart cycle after the basis is seeded with v₀
    /// (pipelined strategies compute the product of v₀ here, applying the
    /// flexible right preconditioner first when one is bound).
    fn begin_cycle(
        &mut self,
        _space: &mut S,
        _cycle: &mut GmresCycle<S::Vector>,
        _flexible: &mut Option<&mut dyn FlexibleRight<S>>,
    ) -> Result<()> {
        Ok(())
    }

    /// Perform one Arnoldi step: operator application, orthogonalization,
    /// least-squares update, policy hooks.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        space: &mut S,
        cycle: &mut GmresCycle<S::Vector>,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        flexible: &mut Option<&mut dyn FlexibleRight<S>>,
        b: &S::Vector,
        x: &S::Vector,
        report: &mut KernelReport,
    ) -> Result<StepOutcome>;
}

/// Control-flow profile of a GMRES preset (where the legacy solvers place
/// their divergence / breakdown / verification decisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmresFlavor {
    /// Check `x` and the cycle-start residual for NaN/Inf and stop with
    /// `Diverged` (the skeptical solver's guard).
    pub check_start_divergence: bool,
    /// Evaluate tolerance / iteration cap / finiteness at the cycle start
    /// and stop there, with no cycle-end verification (the distributed
    /// solvers' loop shape).
    pub break_at_cycle_start: bool,
    /// Stop with `Diverged` as soon as the recurrence residual goes
    /// non-finite mid-cycle (the serial `gmres` guard).
    pub diverge_mid_cycle: bool,
    /// A happy breakdown ends the solve (serial) rather than just the cycle
    /// (distributed, where the outer loop recomputes and restarts).
    pub breakdown_is_terminal: bool,
    /// Recompute the true residual after each cycle and use it for the
    /// convergence decision (serial presets).
    pub verify_cycle_end: bool,
    /// Charge `2n·k` FLOPs for the cycle-end solution update (distributed
    /// presets).
    pub charge_solution_update: bool,
}

impl GmresFlavor {
    /// The serial `gmres` profile.
    pub fn serial() -> Self {
        Self {
            check_start_divergence: false,
            break_at_cycle_start: false,
            diverge_mid_cycle: true,
            breakdown_is_terminal: true,
            verify_cycle_end: true,
            charge_solution_update: false,
        }
    }

    /// The serial flexible-GMRES profile.
    pub fn serial_flexible() -> Self {
        Self {
            diverge_mid_cycle: false,
            ..Self::serial()
        }
    }

    /// The serial skeptical-GMRES profile.
    pub fn serial_skeptical() -> Self {
        Self {
            check_start_divergence: true,
            diverge_mid_cycle: false,
            ..Self::serial()
        }
    }

    /// The distributed profile (both bulk-synchronous and pipelined).
    pub fn distributed() -> Self {
        Self {
            check_start_divergence: false,
            break_at_cycle_start: true,
            diverge_mid_cycle: false,
            breakdown_is_terminal: false,
            verify_cycle_end: false,
            charge_solution_update: true,
        }
    }
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

struct GmresProbe<'a, S: KrylovSpace> {
    b: &'a S::Vector,
    x: &'a S::Vector,
    lsq: &'a HessenbergLsq,
    correction_basis: &'a [S::Vector],
    /// ‖b‖ computed once at solve start (floored at `f64::MIN_POSITIVE`);
    /// reusing it saves an allreduce per probe in distributed spaces.
    bn: f64,
    /// Iteration `x` corresponds to: the cycle base — GMRES only commits
    /// the iterate at cycle boundaries.
    base_iteration: usize,
}

impl<'a, S: KrylovSpace> SolutionProbe<S> for GmresProbe<'a, S> {
    fn local_len(&self, space: &S) -> usize {
        space.local_len(self.x)
    }

    fn iterate(&self) -> &S::Vector {
        self.x
    }

    fn iterate_step(&self) -> usize {
        self.base_iteration
    }

    fn trial_true_relres(&mut self, space: &mut S) -> Result<f64> {
        let mut xt = self.x.clone();
        let y = self.lsq.solve();
        for (j, yj) in y.iter().enumerate() {
            space.axpy(*yj, &self.correction_basis[j], &mut xt);
        }
        let ax = space.apply(&xt)?;
        let r = space.residual(self.b, &ax);
        let rn = space.norm(&r)?;
        Ok(rn / self.bn)
    }
}

/// Post-extension policy hooks shared by every orthogonalization strategy:
/// skipped entirely once the recurrence reports convergence (at rounding
/// level the newest basis vector is noise and orthogonality tests would
/// false-positive); a record-only orthogonality detection skips the
/// residual check, as the legacy skeptical solver did.
fn finish_extended_step<S: KrylovSpace>(
    space: &mut S,
    cycle: &GmresCycle<S::Vector>,
    policies: &mut PolicyStack<'_, S>,
    st: &SolveProgress,
    b: &S::Vector,
    x: &S::Vector,
    use_z_basis: bool,
) -> Result<StepOutcome> {
    if st.relres <= st.tol {
        return Ok(StepOutcome::Extended);
    }
    let len = cycle.basis.len();
    let (new_v, prev_v) = (&cycle.basis[len - 1], cycle.basis.get(len.wrapping_sub(2)));
    match policies.after_orthogonalization(space, &st.ctx(), new_v, prev_v)? {
        StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
        StackOutcome::Recorded => return Ok(StepOutcome::Extended),
        StackOutcome::Continue => {}
    }
    let correction_basis: &[S::Vector] = if use_z_basis {
        &cycle.z_basis
    } else {
        &cycle.basis
    };
    let mut probe = GmresProbe::<S> {
        b,
        x,
        lsq: &cycle.lsq,
        correction_basis,
        bn: st.bn,
        base_iteration: st.iterations - st.cycle_step,
    };
    match policies.on_iteration(space, &st.ctx(), &mut probe)? {
        StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
        StackOutcome::Recorded | StackOutcome::Continue => {}
    }
    Ok(StepOutcome::Extended)
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Modified Gram–Schmidt with immediate dots (the serial strategy).
///
/// `ortho_charge_extra` reproduces the legacy cost models: the plain solver
/// charged `4n·(k+1)` per step, the flexible solver `4n·(k+2)`.
pub struct MgsOrtho {
    /// Extra basis-length units charged per step (0 for `gmres`, 1 for
    /// `fgmres`).
    pub ortho_charge_extra: usize,
}

impl MgsOrtho {
    /// The plain-GMRES cost profile.
    pub fn new() -> Self {
        Self {
            ortho_charge_extra: 0,
        }
    }

    /// The flexible-GMRES cost profile.
    pub fn flexible() -> Self {
        Self {
            ortho_charge_extra: 1,
        }
    }
}

impl Default for MgsOrtho {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: KrylovSpace> OrthoStrategy<S> for MgsOrtho {
    fn step(
        &mut self,
        space: &mut S,
        cycle: &mut GmresCycle<S::Vector>,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        flexible: &mut Option<&mut dyn FlexibleRight<S>>,
        b: &S::Vector,
        x: &S::Vector,
        report: &mut KernelReport,
    ) -> Result<StepOutcome> {
        let vj = cycle.basis.last().expect("basis is never empty").clone();
        let n = space.local_len(&vj);

        // Flexible (inner, possibly unreliable) preconditioning with the
        // outer skeptical validity check.
        let input = if let Some(f) = flexible.as_mut() {
            report.inner_applications += 1;
            let z = f.apply(space, &vj)?;
            if space.local_len(&z) != n || space.local_has_non_finite(&z) {
                report.rejected_inner_results += 1;
                vj.clone()
            } else {
                z
            }
        } else {
            vj
        };
        // Guard the inner/preconditioner apply (immediate-dot schedule:
        // nothing in flight, a guard policy may post its own collective).
        // A rejected inner result already fell back to v_j, which passes
        // any consistency check trivially.
        if flexible.is_some() {
            let vj_ref = cycle.basis.last().expect("basis is never empty");
            match policies.after_precond(space, &st.ctx(), vj_ref, &input)? {
                StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
                StackOutcome::Recorded | StackOutcome::Continue => {}
            }
        }

        match policies.before_spmv(space, &st.ctx(), &input)? {
            StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let mut w = space.apply(&input)?;
        space.charge_flops(4 * n * (cycle.basis.len() + self.ortho_charge_extra));
        match policies.after_spmv(space, &st.ctx(), &input, &w)? {
            StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
            StackOutcome::Recorded => return Ok(StepOutcome::Skipped),
            StackOutcome::Continue => {}
        }

        // Modified Gram–Schmidt against the existing basis: each coefficient
        // is computed against the already partially orthogonalized w.
        let mut h = Vec::with_capacity(cycle.basis.len() + 1);
        for i in 0..cycle.basis.len() {
            let hij = space.dot(&cycle.basis[i], &w)?;
            space.axpy(-hij, &cycle.basis[i], &mut w);
            h.push(hij);
        }
        let h_next = space.norm(&w)?;
        h.push(h_next);
        let res_norm = cycle.lsq.push_column(&h);
        st.iterations += 1;
        st.cycle_step += 1;
        st.relres = res_norm / st.bn;
        st.history.push(st.relres);
        if flexible.is_some() {
            cycle.z_basis.push(input);
        }
        if h_next <= f64::EPSILON * cycle.beta.max(1.0) {
            return Ok(StepOutcome::Breakdown);
        }
        space.scale(1.0 / h_next, &mut w);
        cycle.basis.push(w);
        finish_extended_step(space, cycle, policies, st, b, x, flexible.is_some())
    }
}

/// Classical Gram–Schmidt with fused blocking reductions (the
/// bulk-synchronous distributed strategy): one allreduce for all projection
/// coefficients, one for the normalization.
///
/// With a flexible right preconditioner bound, the strategy iterates on
/// `A·M⁻¹` and stores the preconditioned vectors in the cycle's `z_basis`
/// for the solution correction — right-preconditioned distributed GMRES.
/// Unlike the serial flexible profile there is no validity-rejection of the
/// preconditioned vector: a rejection decision from rank-local data would
/// desynchronize rank control flow, so the distributed slot is reserved for
/// deterministic total operators (see
/// [`RightPrecond`](super::precond::RightPrecond)).
#[derive(Debug, Default)]
pub struct CgsOrtho;

impl CgsOrtho {
    /// New strategy.
    pub fn new() -> Self {
        Self
    }
}

impl<S: KrylovSpace> OrthoStrategy<S> for CgsOrtho {
    fn step(
        &mut self,
        space: &mut S,
        cycle: &mut GmresCycle<S::Vector>,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        flexible: &mut Option<&mut dyn FlexibleRight<S>>,
        b: &S::Vector,
        x: &S::Vector,
        report: &mut KernelReport,
    ) -> Result<StepOutcome> {
        space.advance_extra_work()?;
        let vj = cycle.basis.last().expect("basis is never empty").clone();
        let n = space.local_len(&vj);

        // Right preconditioning: the operator input is M⁻¹·v_j.
        let input = if let Some(f) = flexible.as_mut() {
            report.inner_applications += 1;
            f.apply(space, &vj)?
        } else {
            vj
        };
        // Guard the right-preconditioner apply before its output enters the
        // Arnoldi step. No reduction is in flight yet, so a guard policy may
        // post its own blocking collective; the preconditioned-or-not branch
        // is a solve-wide constant, so rank control flow stays symmetric.
        if flexible.is_some() {
            let vj_ref = cycle.basis.last().expect("basis is never empty");
            match policies.after_precond(space, &st.ctx(), vj_ref, &input)? {
                StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
                StackOutcome::Recorded | StackOutcome::Continue => {}
            }
        }

        match policies.before_spmv(space, &st.ctx(), &input)? {
            StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let mut w = space.apply(&input)?;

        // Projection coefficients: one fused blocking reduction, carrying
        // any policy check dots (wants-dots negotiation). When checks are
        // fused the after-SpMV hook runs after the reduction so the
        // policies can decide from the already-global scalars; with no
        // requests the legacy hook-first order is kept, so a detection
        // still skips the reduction.
        let len = cycle.basis.len();
        let h_proj = {
            let avail = CheckVectors {
                spmv_input: Some(&input),
                spmv_product: Some(&w),
                basis_pair: (len >= 2).then(|| (&cycle.basis[len - 1], &cycle.basis[len - 2])),
            };
            let mut check_pairs: Vec<(&S::Vector, &S::Vector)> = Vec::new();
            let batch = policies.collect_check_dots(space, &st.ctx(), &avail, &mut check_pairs);
            if batch.is_empty() {
                // Legacy path, order and cost model untouched.
                match policies.after_spmv(space, &st.ctx(), &input, &w)? {
                    StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
                    StackOutcome::Recorded => return Ok(StepOutcome::Skipped),
                    StackOutcome::Continue => {}
                }
                let basis_refs: Vec<&S::Vector> = cycle.basis.iter().collect();
                space.fused_dots(&basis_refs, &w)?
            } else {
                let mut pairs: Vec<(&S::Vector, &S::Vector)> =
                    cycle.basis.iter().map(|v| (v, &w)).collect();
                pairs.append(&mut check_pairs);
                let all = space.fused_pairs(&pairs, batch.len())?;
                drop(pairs);
                policies.consume_check_dots(&st.ctx(), &batch, &all[len..]);
                match policies.after_spmv(space, &st.ctx(), &input, &w)? {
                    StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
                    StackOutcome::Recorded => return Ok(StepOutcome::Skipped),
                    StackOutcome::Continue => {}
                }
                all[..len].to_vec()
            }
        };
        for (hij, v) in h_proj.iter().zip(&cycle.basis) {
            space.axpy(-hij, v, &mut w);
        }
        space.charge_flops(2 * n * cycle.basis.len());
        // Normalization: second blocking reduction.
        let h_next = space.norm(&w)?;
        let mut h = h_proj;
        h.push(h_next);
        st.relres = cycle.lsq.push_column(&h) / st.bn;
        st.iterations += 1;
        st.cycle_step += 1;
        st.history.push(st.relres);
        if flexible.is_some() {
            cycle.z_basis.push(input);
        }
        if h_next <= f64::EPSILON * cycle.beta.max(1.0) {
            return Ok(StepOutcome::Breakdown);
        }
        space.scale(1.0 / h_next, &mut w);
        cycle.basis.push(w);
        finish_extended_step(space, cycle, policies, st, b, x, flexible.is_some())
    }
}

/// p(1)-pipelined orthogonalization: one nonblocking fused reduction per
/// step, overlapped with the speculative product of the still-unnormalized
/// vector; the orthonormal basis vector and its product are recovered by
/// linearity.
///
/// With a flexible right preconditioner bound, the strategy pipelines the
/// composite operator `A·M⁻¹` and additionally maintains the preconditioned
/// basis `u_j = M⁻¹·v_j` in the cycle's `z_basis` **by the same linearity
/// recovery** — the `M⁻¹` apply needed for the next speculative product also
/// extends the correction basis, so right preconditioning costs exactly one
/// preconditioner apply per iteration and still posts a single reduction.
/// This relies on `M⁻¹` being a *fixed linear operator* (true for
/// [`RightPrecond`](super::precond::RightPrecond) over any
/// [`SpacePreconditioner`](super::precond::SpacePreconditioner)); genuinely
/// nonlinear inner solves belong to the MGS flexible profile.
#[derive(Debug, Default)]
pub struct PipelinedOrtho;

impl PipelinedOrtho {
    /// New strategy.
    pub fn new() -> Self {
        Self
    }
}

impl<S: KrylovSpace> OrthoStrategy<S> for PipelinedOrtho {
    fn begin_cycle(
        &mut self,
        space: &mut S,
        cycle: &mut GmresCycle<S::Vector>,
        flexible: &mut Option<&mut dyn FlexibleRight<S>>,
    ) -> Result<()> {
        let v0 = cycle.basis[0].clone();
        let z0 = match flexible.as_mut() {
            Some(f) => {
                let u0 = f.apply(space, &v0)?;
                let z0 = space.apply(&u0)?;
                cycle.z_basis.clear();
                cycle.z_basis.push(u0);
                z0
            }
            None => space.apply(&v0)?,
        };
        cycle.products.clear();
        cycle.products.push(z0);
        Ok(())
    }

    fn step(
        &mut self,
        space: &mut S,
        cycle: &mut GmresCycle<S::Vector>,
        policies: &mut PolicyStack<'_, S>,
        st: &mut SolveProgress,
        flexible: &mut Option<&mut dyn FlexibleRight<S>>,
        b: &S::Vector,
        x: &S::Vector,
        report: &mut KernelReport,
    ) -> Result<StepOutcome> {
        let j = cycle.basis.len() - 1;
        let zj = cycle.products[j].clone();
        let n = space.local_len(&zj);
        let is_flexible = flexible.is_some();

        // Fused dots (v_i, z_j) for i = 0..=j plus (z_j, z_j), posted as a
        // single nonblocking reduction that also carries any policy check
        // dots (wants-dots negotiation). At post time the resolved SpMV is
        // z_j = A·v_j (right-preconditioned: A·u_j with u_j = M⁻¹·v_j, the
        // z_basis entry) and the newest formed basis pair is (v_j, v_{j−1}),
        // so fused check decisions lag the hooks by one step — the cost of
        // keeping detection off the p(1) critical path.
        let solver_len = cycle.basis.len() + 1;
        let (pending, batch) = {
            let mut pairs: Vec<(&S::Vector, &S::Vector)> =
                cycle.basis.iter().map(|v| (v, &zj)).collect();
            pairs.push((&zj, &zj));
            let avail = CheckVectors {
                spmv_input: Some(if is_flexible {
                    &cycle.z_basis[j]
                } else {
                    &cycle.basis[j]
                }),
                spmv_product: Some(&zj),
                basis_pair: (j >= 1).then(|| (&cycle.basis[j], &cycle.basis[j - 1])),
            };
            let batch = policies.collect_check_dots(space, &st.ctx(), &avail, &mut pairs);
            (space.start_dots_tagged(&pairs, batch.len())?, batch)
        };
        // ... and overlapped with the preconditioner apply m_j = M⁻¹·z_j
        // (right-preconditioned mode), the speculative next product
        // A·(M⁻¹)z_j and any extra application work.
        space.advance_extra_work()?;
        let mj = match flexible.as_mut() {
            Some(f) => {
                report.inner_applications += 1;
                Some(f.apply(space, &zj)?)
            }
            None => None,
        };
        let spec_input: &S::Vector = mj.as_ref().unwrap_or(&zj);
        match policies.before_spmv(space, &st.ctx(), spec_input)? {
            StackOutcome::Act(r) => {
                // Complete the posted reduction before abandoning the step
                // (detections are rank-symmetric, so every rank drains it):
                // an in-flight collective must be waited on, and the solve
                // continues after a Restart-response detection.
                space.finish_dots(pending)?;
                return Ok(StepOutcome::Detected(r));
            }
            StackOutcome::Recorded | StackOutcome::Continue => {}
        }
        let azj = space.apply(spec_input)?;
        let reduced = space.finish_dots(pending)?;
        policies.consume_check_dots(&st.ctx(), &batch, &reduced[solver_len..]);
        match policies.after_spmv(space, &st.ctx(), spec_input, &azj)? {
            StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
            StackOutcome::Recorded => return Ok(StepOutcome::Skipped),
            StackOutcome::Continue => {}
        }
        // Guard the overlap-region preconditioner apply m_j = M⁻¹·z_j
        // *after* the fused reduction completed (a guard policy may post
        // its own blocking collective here) and *before* m_j extends the
        // preconditioned basis by linearity: a Restart detection discards
        // the cycle with x — which only changes at cycle boundaries —
        // untouched.
        if let Some(mj) = mj.as_ref() {
            match policies.after_precond(space, &st.ctx(), &zj, mj)? {
                StackOutcome::Act(r) => return Ok(StepOutcome::Detected(r)),
                StackOutcome::Recorded | StackOutcome::Continue => {}
            }
        }
        let (h_proj, zz) = reduced[..solver_len].split_at(cycle.basis.len());
        let zz = zz[0];
        // ‖z_j − Σ h_i v_i‖² = (z_j,z_j) − Σ h_i² by orthonormality of V.
        let h_next_sq = zz - h_proj.iter().map(|h| h * h).sum::<f64>();
        // NaN must take this branch too, hence no plain `<=` comparison.
        if h_next_sq.is_nan() || h_next_sq <= f64::EPSILON * zz.max(1.0) {
            // Breakdown (or roundoff made the pipelined norm unusable):
            // close the cycle here; the outer loop recomputes the true
            // residual and restarts if needed.
            let mut h = h_proj.to_vec();
            h.push(h_next_sq.max(0.0).sqrt());
            st.relres = cycle.lsq.push_column(&h) / st.bn;
            st.iterations += 1;
            st.cycle_step += 1;
            st.history.push(st.relres);
            return Ok(StepOutcome::Breakdown);
        }
        let h_next = h_next_sq.sqrt();
        // v_{j+1} = (z_j − Σ h_i v_i) / h_next, and by linearity
        // A v_{j+1} = (A z_j − Σ h_i A v_i) / h_next — and, preconditioned,
        // M⁻¹ v_{j+1} = (M⁻¹ z_j − Σ h_i u_i) / h_next with the already
        // computed m_j = M⁻¹ z_j.
        let mut v_next = zj.clone();
        let mut z_next = azj;
        for (hij, (v, z)) in h_proj.iter().zip(cycle.basis.iter().zip(&cycle.products)) {
            space.axpy(-hij, v, &mut v_next);
            space.axpy(-hij, z, &mut z_next);
        }
        space.scale(1.0 / h_next, &mut v_next);
        space.scale(1.0 / h_next, &mut z_next);
        if let Some(mut u_next) = mj {
            for (hij, u) in h_proj.iter().zip(&cycle.z_basis) {
                space.axpy(-hij, u, &mut u_next);
            }
            space.scale(1.0 / h_next, &mut u_next);
            cycle.z_basis.push(u_next);
            space.charge_flops(8 * n * cycle.basis.len());
        } else {
            space.charge_flops(6 * n * cycle.basis.len());
        }

        let mut h = h_proj.to_vec();
        h.push(h_next);
        st.relres = cycle.lsq.push_column(&h) / st.bn;
        st.iterations += 1;
        st.cycle_step += 1;
        st.history.push(st.relres);
        cycle.basis.push(v_next);
        cycle.products.push(z_next);
        finish_extended_step(space, cycle, policies, st, b, x, is_flexible)
    }
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

fn update_solution<S: KrylovSpace>(
    space: &mut S,
    x: &mut S::Vector,
    cycle: &GmresCycle<S::Vector>,
    flexible: bool,
    charge: bool,
) {
    if cycle.steps() == 0 && !flexible {
        return;
    }
    let basis: &[S::Vector] = if flexible {
        &cycle.z_basis
    } else {
        &cycle.basis
    };
    if flexible && basis.is_empty() {
        return;
    }
    let y = cycle.lsq.solve();
    for (j, yj) in y.iter().enumerate() {
        space.axpy(*yj, &basis[j], x);
    }
    if charge {
        let n = space.local_len(x);
        space.charge_flops(2 * n * y.len());
    }
}

/// Run the unified restarted-GMRES kernel.
///
/// Returns the solve outcome plus the kernel report (flexible and policy
/// statistics). `flexible` switches the kernel into FGMRES mode: the inner
/// solver is applied to every basis vector and the solution correction uses
/// the preconditioned basis.
#[allow(clippy::too_many_arguments)]
pub fn run_gmres<S: KrylovSpace, T: OrthoStrategy<S>>(
    space: &mut S,
    b: &S::Vector,
    x0: Option<S::Vector>,
    opts: &SolveOptions,
    strategy: &mut T,
    policies: &mut PolicyStack<'_, S>,
    mut flexible: Option<&mut dyn FlexibleRight<S>>,
    flavor: &GmresFlavor,
) -> Result<(KernelOutcome<S::Vector>, KernelReport)> {
    let mut x = x0.unwrap_or_else(|| space.zeros_like(b));
    let bn = space.norm(b)?.max(f64::MIN_POSITIVE);
    let restart = opts.restart.max(1);
    let mut st = SolveProgress::new(opts.tol, opts.max_iters, bn);
    let mut report = KernelReport::default();
    let is_flexible = flexible.is_some();
    policies.on_solve_start(space, b)?;

    let reason;
    // Backstop against a record-only detection that fires on every product:
    // skipped steps make no progress, so cap them like policy restarts.
    let mut skipped_steps = 0usize;
    'outer: loop {
        // --- Cycle start: (true) residual --------------------------------
        let ax = space.apply(&x)?;
        let r0 = space.residual(b, &ax);
        let rnorm = space.norm(&r0)?;
        st.relres = rnorm / bn;
        if st.history.is_empty() {
            st.history.push(st.relres);
        }
        if flavor.break_at_cycle_start {
            if st.relres <= opts.tol {
                reason = StopReason::Converged;
                break 'outer;
            }
            if !st.relres.is_finite() {
                if recover(policies, &mut st, &mut x, &mut report) {
                    st.cycle += 1;
                    continue 'outer;
                }
                reason = StopReason::Diverged;
                break 'outer;
            }
            if st.iterations >= opts.max_iters {
                reason = StopReason::MaxIterations;
                break 'outer;
            }
        } else {
            if st.relres <= opts.tol {
                reason = StopReason::Converged;
                break 'outer;
            }
            if flavor.check_start_divergence
                && (space.local_has_non_finite(&x) || !st.relres.is_finite())
            {
                if recover(policies, &mut st, &mut x, &mut report) {
                    st.cycle += 1;
                    continue 'outer;
                }
                reason = StopReason::Diverged;
                break 'outer;
            }
        }
        policies.on_cycle_start(space, &st.ctx(), &x)?;

        // --- Seed the cycle ----------------------------------------------
        let mut v0 = r0;
        if rnorm > 0.0 {
            space.scale(1.0 / rnorm, &mut v0);
        }
        let mut cycle = GmresCycle {
            basis: vec![v0],
            z_basis: Vec::new(),
            products: Vec::new(),
            lsq: HessenbergLsq::new(restart, rnorm),
            beta: rnorm,
        };
        strategy.begin_cycle(space, &mut cycle, &mut flexible)?;
        st.cycle_step = 0;

        // --- Inner (Arnoldi) loop ----------------------------------------
        let mut breakdown = false;
        for _ in 0..restart {
            if st.iterations >= opts.max_iters {
                break;
            }
            match strategy.step(
                space,
                &mut cycle,
                policies,
                &mut st,
                &mut flexible,
                b,
                &x,
                &mut report,
            )? {
                StepOutcome::Extended => {
                    if flavor.diverge_mid_cycle && !st.relres.is_finite() {
                        update_solution(
                            space,
                            &mut x,
                            &cycle,
                            is_flexible,
                            flavor.charge_solution_update,
                        );
                        if recover(policies, &mut st, &mut x, &mut report) {
                            st.cycle += 1;
                            continue 'outer;
                        }
                        reason = StopReason::Diverged;
                        break 'outer;
                    }
                    if st.relres <= opts.tol {
                        break;
                    }
                }
                StepOutcome::Breakdown => {
                    breakdown = true;
                    break;
                }
                StepOutcome::Skipped => {
                    skipped_steps += 1;
                    if skipped_steps > opts.max_iters.max(restart) {
                        update_solution(
                            space,
                            &mut x,
                            &cycle,
                            is_flexible,
                            flavor.charge_solution_update,
                        );
                        let ax = space.apply(&x)?;
                        let r = space.residual(b, &ax);
                        st.relres = space.norm(&r)? / bn;
                        reason = StopReason::CorruptionDetected;
                        break 'outer;
                    }
                }
                StepOutcome::Detected(DetectionResponse::Restart) => {
                    report.policy_restarts += 1;
                    if report.policy_restarts > opts.max_iters.max(1) {
                        // A detection that fires on every retry would restart
                        // forever without consuming iterations; treat the
                        // persistent corruption as terminal instead.
                        update_solution(
                            space,
                            &mut x,
                            &cycle,
                            is_flexible,
                            flavor.charge_solution_update,
                        );
                        let ax = space.apply(&x)?;
                        let r = space.residual(b, &ax);
                        st.relres = space.norm(&r)? / bn;
                        reason = StopReason::CorruptionDetected;
                        break 'outer;
                    }
                    // Keep whatever progress preceded the corrupted step:
                    // the cycle is discarded and the outer loop recomputes
                    // the residual from x, which only changes at cycle
                    // boundaries and is therefore uncorrupted.
                    st.cycle += 1;
                    continue 'outer;
                }
                StepOutcome::Detected(_) => {
                    update_solution(
                        space,
                        &mut x,
                        &cycle,
                        is_flexible,
                        flavor.charge_solution_update,
                    );
                    let ax = space.apply(&x)?;
                    let r = space.residual(b, &ax);
                    st.relres = space.norm(&r)? / bn;
                    reason = StopReason::CorruptionDetected;
                    break 'outer;
                }
            }
        }

        // --- Cycle end: solution update and stop decision ----------------
        update_solution(
            space,
            &mut x,
            &cycle,
            is_flexible,
            flavor.charge_solution_update,
        );
        if flavor.verify_cycle_end {
            let ax = space.apply(&x)?;
            let r = space.residual(b, &ax);
            st.relres = space.norm(&r)? / bn;
            if st.relres <= opts.tol {
                reason = StopReason::Converged;
                break 'outer;
            }
            if breakdown && flavor.breakdown_is_terminal {
                reason = StopReason::Breakdown;
                break 'outer;
            }
            if st.iterations >= opts.max_iters {
                reason = StopReason::MaxIterations;
                break 'outer;
            }
        } else {
            if st.relres <= opts.tol {
                // The distributed profiles reach this point on the
                // *recurrence* estimate, and the pipelined zz-recurrence can
                // collapse to zero through roundoff while the iterate is
                // nowhere near convergence (found fault-free by the
                // campaign oracle). Verify the claim with a charged true
                // residual before reporting success; a refuted claim falls
                // through — to an honest MaxIterations, or to a restart
                // whose cycle-start residual governs as usual.
                let ax = space.apply(&x)?;
                let r = space.residual(b, &ax);
                st.relres = space.norm(&r)? / bn;
                if st.relres <= opts.tol {
                    reason = StopReason::Converged;
                    break 'outer;
                }
            }
            if st.iterations >= opts.max_iters {
                reason = StopReason::MaxIterations;
                break 'outer;
            }
        }
        st.cycle += 1;
    }

    report.policy_overhead = policies.overhead_report();
    Ok((
        KernelOutcome {
            x,
            iterations: st.iterations,
            relative_residual: st.relres,
            reason,
            history: st.history,
            flops: space.accumulated_flops(),
        },
        report,
    ))
}

fn recover<S: KrylovSpace>(
    policies: &mut PolicyStack<'_, S>,
    st: &mut SolveProgress,
    x: &mut S::Vector,
    report: &mut KernelReport,
) -> bool {
    // Backstop against a recovery policy that restores forever without the
    // solve making progress (well-behaved policies bound themselves).
    if report.failure_recoveries >= st.max_iters.max(1) {
        return false;
    }
    if policies.on_failure(&st.ctx(), FailureEvent::Divergence, x) == RecoveryAction::Restart {
        report.failure_recoveries += 1;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::policy::{IterCtx, PolicyAction, PolicyOverhead, ResiliencePolicy};
    use crate::kernel::space::SerialSpace;
    use resilient_linalg::poisson2d;

    /// A policy that detects on every product — the pathological case a
    /// stuck-at fault model or mismatched ABFT encoding produces.
    struct AlwaysDetect {
        response: DetectionResponse,
        overhead: PolicyOverhead,
    }

    impl AlwaysDetect {
        fn new(response: DetectionResponse) -> Self {
            Self {
                response,
                overhead: PolicyOverhead {
                    name: "always-detect",
                    ..PolicyOverhead::default()
                },
            }
        }
    }

    impl<S: KrylovSpace> ResiliencePolicy<S> for AlwaysDetect {
        fn name(&self) -> &'static str {
            "always-detect"
        }
        fn response(&self) -> DetectionResponse {
            self.response
        }
        fn after_spmv(
            &mut self,
            _space: &mut S,
            _ctx: &IterCtx,
            _v: &S::Vector,
            _w: &S::Vector,
        ) -> Result<PolicyAction> {
            self.overhead.detections += 1;
            Ok(PolicyAction::Detected)
        }
        fn overhead(&self) -> PolicyOverhead {
            self.overhead.clone()
        }
    }

    #[test]
    fn persistent_restart_detection_terminates() {
        // Regression: a detection that fires on every retry must not restart
        // the cycle forever — the kernel caps policy restarts at max_iters
        // and stops with CorruptionDetected.
        let a = poisson2d(6, 6);
        let b = vec![1.0; a.nrows()];
        let mut space = SerialSpace::new(&a);
        let mut policy = AlwaysDetect::new(DetectionResponse::Restart);
        let mut stack = PolicyStack::new(vec![&mut policy]);
        let opts = SolveOptions::default().with_tol(1e-9).with_max_iters(25);
        let (out, report) = run_gmres(
            &mut space,
            &b,
            None,
            &opts,
            &mut MgsOrtho::new(),
            &mut stack,
            None,
            &GmresFlavor::serial(),
        )
        .unwrap();
        assert_eq!(out.reason, StopReason::CorruptionDetected);
        assert_eq!(out.iterations, 0, "no step ever extended the basis");
        assert!(report.policy_restarts > opts.max_iters);
    }

    #[test]
    fn persistent_record_only_detection_terminates() {
        // Same pathology through the record-only path: skipped steps make no
        // progress, so the kernel must cap them rather than spin forever.
        let a = poisson2d(6, 6);
        let b = vec![1.0; a.nrows()];
        let mut space = SerialSpace::new(&a);
        let mut policy = AlwaysDetect::new(DetectionResponse::RecordOnly);
        let mut stack = PolicyStack::new(vec![&mut policy]);
        let opts = SolveOptions::default().with_tol(1e-9).with_max_iters(25);
        let (out, _report) = run_gmres(
            &mut space,
            &b,
            None,
            &opts,
            &mut MgsOrtho::new(),
            &mut stack,
            None,
            &GmresFlavor::serial(),
        )
        .unwrap();
        assert_eq!(out.reason, StopReason::CorruptionDetected);
        assert_eq!(out.iterations, 0);
    }
}
