//! The skeptical checks of §III-A as a composable [`ResiliencePolicy`].
//!
//! [`SkepticalPolicy`] reimplements the invariant tests of the legacy
//! `skeptical_gmres` silo — finiteness/norm-bound on every product,
//! orthogonality of the newest basis pair, periodic residual-consistency —
//! generically over any [`KrylovSpace`], so the same checks now also guard
//! pipelined/distributed solves (every decision quantity is a *global* norm
//! or dot, keeping rank control flow symmetric).

use super::policy::{
    DetectionResponse, IterCtx, PolicyAction, PolicyOverhead, ResiliencePolicy, SolutionProbe,
};
use super::space::KrylovSpace;
use crate::skeptical::sdc_gmres::{SkepticalConfig, SkepticalReport, SkepticalResponse};
use resilient_runtime::Result;

/// Skeptical invariant checks as a policy. Build from the legacy
/// [`SkepticalConfig`]; after the solve, [`SkepticalPolicy::report`] returns
/// the legacy [`SkepticalReport`].
#[derive(Debug, Clone)]
pub struct SkepticalPolicy {
    cfg: SkepticalConfig,
    report: SkepticalReport,
    /// Operator ∞-norm estimate, captured at solve start from the space.
    norm_a: f64,
    /// Local vector length, captured at solve start (for check costing).
    n: usize,
}

impl SkepticalPolicy {
    /// Build the policy from a skeptical configuration.
    pub fn new(cfg: SkepticalConfig) -> Self {
        Self {
            cfg,
            report: SkepticalReport::default(),
            norm_a: f64::INFINITY,
            n: 0,
        }
    }

    /// The accumulated legacy-format report.
    pub fn report(&self) -> SkepticalReport {
        self.report.clone()
    }
}

impl<S: KrylovSpace> ResiliencePolicy<S> for SkepticalPolicy {
    fn name(&self) -> &'static str {
        "skeptical"
    }

    fn response(&self) -> DetectionResponse {
        match self.cfg.response {
            SkepticalResponse::RecordOnly => DetectionResponse::RecordOnly,
            SkepticalResponse::Restart => DetectionResponse::Restart,
            SkepticalResponse::Abort => DetectionResponse::Abort,
        }
    }

    fn on_solve_start(&mut self, space: &mut S, b: &S::Vector) -> Result<()> {
        self.norm_a = space.operator_norm_estimate();
        self.n = space.local_len(b);
        Ok(())
    }

    /// Finiteness / norm bound on the raw product: for `w = A·v`,
    /// `‖w‖ ≤ factor·‖A‖∞·max(‖v‖, 1)`; a high-exponent-bit flip violates
    /// this by many orders of magnitude.
    fn after_spmv(
        &mut self,
        space: &mut S,
        _ctx: &IterCtx,
        v: &S::Vector,
        w: &S::Vector,
    ) -> Result<PolicyAction> {
        if !self.cfg.local_checks {
            return Ok(PolicyAction::Continue);
        }
        self.report.local_checks_run += 1;
        let n = space.local_len(w);
        self.report.check_flops += 4 * n;
        space.record_check_flops(4 * n);
        let wn = space.norm(w)?;
        let suspicious = space.local_has_non_finite(w)
            || !wn.is_finite()
            || (self.norm_a.is_finite()
                && wn > self.cfg.norm_bound_factor * self.norm_a * space.norm(v)?.max(1.0));
        if suspicious {
            self.report.detections += 1;
            return Ok(PolicyAction::Detected);
        }
        Ok(PolicyAction::Continue)
    }

    /// Orthogonality of the newest basis pair (Gram–Schmidt should make
    /// them orthogonal to machine precision).
    fn after_orthogonalization(
        &mut self,
        space: &mut S,
        _ctx: &IterCtx,
        new_v: &S::Vector,
        prev_v: Option<&S::Vector>,
    ) -> Result<PolicyAction> {
        if !self.cfg.local_checks {
            return Ok(PolicyAction::Continue);
        }
        let prev = match prev_v {
            Some(p) => p,
            None => return Ok(PolicyAction::Continue),
        };
        self.report.local_checks_run += 1;
        let n = space.local_len(new_v);
        self.report.check_flops += 2 * n;
        space.record_check_flops(2 * n);
        let inner = space.dot(new_v, prev)?.abs();
        // With an infinite tolerance (how presets disable the test for bases
        // that are legitimately non-orthogonal, e.g. the p(1)-pipelined one)
        // only the NaN test below can fire, so skip the two norm reductions.
        let suspicious = if self.cfg.orthogonality_tol.is_finite() {
            let scale = space.norm(new_v)? * space.norm(prev)?;
            !inner.is_finite() || inner > self.cfg.orthogonality_tol * scale.max(f64::MIN_POSITIVE)
        } else {
            !inner.is_finite()
        };
        if suspicious {
            self.report.detections += 1;
            return Ok(PolicyAction::Detected);
        }
        Ok(PolicyAction::Continue)
    }

    /// Periodic residual-consistency check: the recurrence estimate is
    /// compared against the explicitly computed true residual of the trial
    /// solution. Corruption that slipped past the local checks makes the
    /// recurrence lie *low*, so only a large one-sided discrepancy fires.
    fn on_iteration(
        &mut self,
        space: &mut S,
        ctx: &IterCtx,
        probe: &mut dyn SolutionProbe<S>,
    ) -> Result<PolicyAction> {
        if self.cfg.residual_check_interval == 0
            || ctx.iteration % self.cfg.residual_check_interval != 0
        {
            return Ok(PolicyAction::Continue);
        }
        self.report.residual_checks_run += 1;
        let check_cost = space.flops_per_apply() + 4 * self.n;
        self.report.check_flops += check_cost;
        space.record_check_flops(check_cost);
        let true_rr = probe.trial_true_relres(space)?;
        let allowed = ctx.relres * (1.0 + self.cfg.residual_mismatch_tol) + 10.0 * ctx.tol;
        if !true_rr.is_finite() || true_rr > allowed {
            self.report.detections += 1;
            return Ok(PolicyAction::Detected);
        }
        Ok(PolicyAction::Continue)
    }

    fn overhead(&self) -> PolicyOverhead {
        PolicyOverhead {
            name: "skeptical",
            checks_run: self.report.local_checks_run + self.report.residual_checks_run,
            detections: self.report.detections,
            restarts: self.report.corrective_restarts,
            check_flops: self.report.check_flops,
        }
    }

    fn note_restart(&mut self) {
        self.report.corrective_restarts += 1;
    }
}
