//! Composed scenario C1 — pipelined GMRES × skeptical SDC detection
//! (RBSP × SkP).
//!
//! Before the unified kernel, latency hiding (rbsp silo) and corruption
//! detection (skeptical silo) could not run in the same solve. This
//! experiment runs the p(1)-pipelined GMRES under the skeptical policy
//! stack on the simulated distributed runtime and reports, per scenario,
//! convergence, detections, corrective restarts and the per-policy overhead
//! (check FLOPs, also visible as `RankStats::check_flops` virtual time).
//!
//! Pass `--smoke` for a CI-sized run.

use resilience::kernel::compose::pipelined_skeptical_gmres;
use resilience::prelude::*;
use resilient_bench::{fmt_g, Table};
use resilient_linalg::poisson2d;
use resilient_runtime::{LatencyModel, Runtime, RuntimeConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nx, ranks) = if smoke { (8, 2) } else { (16, 8) };
    let mut cfg = RuntimeConfig::fast();
    cfg.latency = LatencyModel {
        alpha: 2.0e-4,
        beta: 0.0,
        gamma: 0.0,
    };
    cfg.seconds_per_flop = 1.0e-9;

    let opts = DistSolveOptions::default()
        .with_tol(1e-7)
        .with_max_iters(if smoke { 120 } else { 400 })
        .with_restart(30);

    let mut table = Table::new(
        &format!("C1: pipelined GMRES x SDC detection, 2-D Poisson {nx}x{nx}, {ranks} ranks"),
        &[
            "scenario",
            "converged",
            "iters",
            "relres",
            "detections",
            "restarts",
            "check kflops",
            "time (ms)",
        ],
    );

    // Scenario rows: unchecked baseline, checked clean run, checked run
    // with one injected exponent-bit flip in a mid-solve SpMV product.
    for (label, checked, fault) in [
        ("pipelined, no checks", false, None),
        ("pipelined + SDC, clean", true, None),
        (
            "pipelined + SDC, bit-62 flip",
            true,
            Some(SpmvFault {
                rank: ranks - 1,
                at_application: 5,
                local_element: 2,
                bit: 62,
            }),
        ),
    ] {
        let rt = Runtime::new(cfg.clone());
        let opts2 = opts;
        let rows = rt
            .run(ranks, move |comm| {
                let a = poisson2d(nx, nx);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 3) as f64);
                let t0 = comm.now();
                let (out, detections, restarts, check_flops) = if checked {
                    let (out, report) = pipelined_skeptical_gmres(
                        comm,
                        &da,
                        &b,
                        &opts2,
                        &SkepticalConfig::default(),
                        fault,
                    )?;
                    let per_policy: usize = report.policies.iter().map(|p| p.check_flops).sum();
                    (
                        out,
                        report.skeptical.detections,
                        report.skeptical.corrective_restarts,
                        per_policy,
                    )
                } else {
                    (pipelined_gmres(comm, &da, &b, &opts2)?, 0, 0, 0)
                };
                let elapsed = comm.now() - t0;
                Ok((
                    out.converged,
                    out.iterations,
                    out.relative_residual,
                    detections,
                    restarts,
                    check_flops,
                    elapsed,
                ))
            })
            .unwrap_all();
        // Rank 0's view; detections/restarts are identical on every rank by
        // construction (all decisions derive from global reductions).
        let (conv, iters, relres, detections, restarts, check_flops, elapsed) = rows[0];
        table.row(vec![
            label.to_string(),
            conv.to_string(),
            iters.to_string(),
            fmt_g(relres),
            detections.to_string(),
            restarts.to_string(),
            fmt_g(check_flops as f64 / 1e3),
            fmt_g(elapsed * 1e3),
        ]);
    }
    table.emit("composed_pipelined_sdc");
}
