//! Distributed conjugate gradients: bulk-synchronous vs. pipelined.

use resilient_runtime::{Comm, ReduceOp, Result};

use super::{DistSolveOptions, DistSolveOutcome};
use crate::distributed::{DistCsr, DistVector};

/// Classical distributed CG. Each iteration performs one SpMV (neighborhood
/// communication) and **two blocking all-reduces** — the structure whose
/// latency sensitivity §II-B describes.
pub fn dist_cg(
    comm: &mut Comm,
    a: &DistCsr,
    b: &DistVector,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let n = b.global_len();
    let mut x = DistVector::zeros(comm, n);
    let bn = b.norm(comm)?.max(f64::MIN_POSITIVE);

    let ax = a.apply(comm, &x)?;
    let mut r = b.clone();
    r.axpy(-1.0, &ax);
    let mut p = r.clone();
    let mut rr = r.dot(comm, &r)?;
    let mut history = vec![rr.sqrt() / bn];
    let mut iterations = 0;

    while iterations < opts.max_iters {
        let relres = rr.sqrt() / bn;
        if relres <= opts.tol {
            break;
        }
        if opts.extra_work_per_iter > 0.0 {
            comm.advance(opts.extra_work_per_iter);
        }
        let ap = a.apply(comm, &p)?;
        // Blocking reduction #1.
        let pap = p.dot(comm, &ap)?;
        if pap <= 0.0 || !pap.is_finite() {
            break;
        }
        let alpha = rr / pap;
        x.axpy(alpha, &p);
        r.axpy(-alpha, &ap);
        comm.charge_flops(4 * r.local_len());
        // Blocking reduction #2.
        let rr_new = r.dot(comm, &r)?;
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..p.local.len() {
            p.local[i] = r.local[i] + beta * p.local[i];
        }
        comm.charge_flops(2 * p.local_len());
        iterations += 1;
        history.push(rr.sqrt() / bn);
    }
    let relative_residual = rr.sqrt() / bn;
    Ok(DistSolveOutcome {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= opts.tol,
        history,
    })
}

/// Pipelined CG (Ghysels & Vanroose): algebraically equivalent to CG but with
/// a **single nonblocking fused all-reduce** per iteration, posted before the
/// SpMV and completed after it, so the global reduction's latency is hidden
/// behind the matrix-vector product and the extra per-iteration work.
pub fn pipelined_cg(
    comm: &mut Comm,
    a: &DistCsr,
    b: &DistVector,
    opts: &DistSolveOptions,
) -> Result<DistSolveOutcome> {
    let n = b.global_len();
    let mut x = DistVector::zeros(comm, n);
    let bn = b.norm(comm)?.max(f64::MIN_POSITIVE);

    // r = b - A x ; w = A r
    let ax = a.apply(comm, &x)?;
    let mut r = b.clone();
    r.axpy(-1.0, &ax);
    let mut w = a.apply(comm, &r)?;

    let mut z = DistVector::zeros(comm, n); // tracks A s
    let mut s = DistVector::zeros(comm, n); // tracks A p
    let mut p = DistVector::zeros(comm, n);
    let mut gamma_old = 0.0;
    let mut alpha_old = 0.0;
    let mut history = Vec::new();
    let mut iterations = 0;
    let mut relres = f64::INFINITY;

    while iterations < opts.max_iters {
        // Fused local partial reductions: γ = (r, r), δ = (w, r).
        let local = [r.local_dot(&r), w.local_dot(&r)];
        comm.charge_flops(4 * r.local_len());
        // Post the single nonblocking reduction ...
        let pending = comm.iallreduce(ReduceOp::Sum, &local)?;
        // ... and overlap it with the SpMV q = A w and the extra work.
        if opts.extra_work_per_iter > 0.0 {
            comm.advance(opts.extra_work_per_iter);
        }
        let q = a.apply(comm, &w)?;
        let reduced = pending.wait_vector(comm)?;
        let (gamma, delta) = (reduced[0], reduced[1]);

        relres = gamma.max(0.0).sqrt() / bn;
        if history.is_empty() {
            history.push(relres);
        }
        if relres <= opts.tol || !relres.is_finite() {
            break;
        }

        let (alpha, beta);
        if iterations > 0 {
            beta = gamma / gamma_old;
            alpha = gamma / (delta - beta * gamma / alpha_old);
        } else {
            beta = 0.0;
            alpha = gamma / delta;
        }
        if !alpha.is_finite() || alpha == 0.0 {
            break;
        }

        // Recurrence updates (all local).
        for i in 0..p.local.len() {
            z.local[i] = q.local[i] + beta * z.local[i];
            s.local[i] = w.local[i] + beta * s.local[i];
            p.local[i] = r.local[i] + beta * p.local[i];
            x.local[i] += alpha * p.local[i];
            r.local[i] -= alpha * s.local[i];
            w.local[i] -= alpha * z.local[i];
        }
        comm.charge_flops(12 * p.local_len());

        gamma_old = gamma;
        alpha_old = alpha;
        iterations += 1;
        history.push(relres);
    }
    Ok(DistSolveOutcome {
        x,
        iterations,
        relative_residual: relres,
        converged: relres <= opts.tol,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilient_linalg::poisson2d;
    use resilient_runtime::{LatencyModel, Runtime, RuntimeConfig};

    fn solve_both(ranks: usize, nx: usize) -> Vec<(Vec<f64>, Vec<f64>, usize, usize)> {
        let rt = Runtime::new(RuntimeConfig::fast());
        rt.run(ranks, move |comm| {
            let a = poisson2d(nx, nx);
            let n = a.nrows();
            let da = DistCsr::from_global(comm, &a)?;
            let b = DistVector::from_fn(comm, n, |i| 1.0 + (i % 3) as f64);
            let opts = DistSolveOptions::default()
                .with_tol(1e-9)
                .with_max_iters(400);
            let classic = dist_cg(comm, &da, &b, &opts)?;
            let pipelined = pipelined_cg(comm, &da, &b, &opts)?;
            assert!(classic.converged, "classic CG must converge");
            assert!(pipelined.converged, "pipelined CG must converge");
            Ok((
                classic.x.gather_global(comm)?,
                pipelined.x.gather_global(comm)?,
                classic.iterations,
                pipelined.iterations,
            ))
        })
        .unwrap_all()
    }

    #[test]
    fn both_variants_solve_the_system_identically() {
        let results = solve_both(4, 10);
        let a = poisson2d(10, 10);
        for (classic_x, pipelined_x, classic_iters, pipelined_iters) in results {
            // Verify against the serial solution via the residual.
            let b: Vec<f64> = (0..a.nrows()).map(|i| 1.0 + (i % 3) as f64).collect();
            let res_c = crate::solvers::common::true_relative_residual(&a, &b, &classic_x);
            let res_p = crate::solvers::common::true_relative_residual(&a, &b, &pipelined_x);
            assert!(res_c < 1e-7, "classic residual {res_c}");
            assert!(res_p < 1e-7, "pipelined residual {res_p}");
            // Same mathematics: iteration counts agree to within a couple.
            assert!(
                (classic_iters as i64 - pipelined_iters as i64).abs() <= 3,
                "iteration counts diverged: {classic_iters} vs {pipelined_iters}"
            );
        }
    }

    #[test]
    fn pipelined_cg_is_faster_under_latency() {
        // With substantial collective latency and overlap-able work, the
        // pipelined variant must finish in less virtual time.
        let mut cfg = RuntimeConfig::fast();
        cfg.latency = LatencyModel {
            alpha: 5.0e-4,
            beta: 0.0,
            gamma: 0.0,
        };
        cfg.seconds_per_flop = 1.0e-9;
        let rt = Runtime::new(cfg);
        let times = rt
            .run(8, move |comm| {
                let a = poisson2d(16, 16);
                let n = a.nrows();
                let da = DistCsr::from_global(comm, &a)?;
                let b = DistVector::from_fn(comm, n, |i| (i as f64 * 0.1).cos());
                let opts = DistSolveOptions::default()
                    .with_tol(1e-8)
                    .with_max_iters(200);
                let t0 = comm.now();
                let classic = dist_cg(comm, &da, &b, &opts)?;
                let t1 = comm.now();
                let pipelined = pipelined_cg(comm, &da, &b, &opts)?;
                let t2 = comm.now();
                assert!(classic.converged && pipelined.converged);
                Ok((t1 - t0, t2 - t1))
            })
            .unwrap_all();
        for (classic_time, pipelined_time) in times {
            assert!(
                pipelined_time < classic_time,
                "pipelined CG should hide collective latency: classic={classic_time}, pipelined={pipelined_time}"
            );
        }
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let results = solve_both(1, 6);
        assert_eq!(results.len(), 1);
    }
}
