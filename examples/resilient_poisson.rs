//! Solve a 2-D Poisson problem three ways under silent data corruption:
//! trusting GMRES, skeptical GMRES, and FT-GMRES (selective reliability).
//!
//! Run with: `cargo run --example resilient_poisson`

use resilience::prelude::*;
use resilient_linalg::poisson2d;

fn main() {
    let a = poisson2d(24, 24);
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.1).collect();
    let opts = SolveOptions::default()
        .with_tol(1e-8)
        .with_max_iters(800)
        .with_restart(40);
    println!("2-D Poisson, n = {n}: GMRES under a single injected bit flip\n");
    println!(
        "{:<28} {:>10} {:>8} {:>14}",
        "solver", "converged", "iters", "true rel. res."
    );

    for bit in [1u32, 40, 58, 63] {
        let plan = InjectionPlan {
            at_application: 6,
            target: FaultTarget::RandomElement,
            bit: Some(bit),
        };

        let trusting_op = FaultyOperator::new(&a, Some(plan), 11);
        let (t_out, _) =
            skeptical_gmres(&trusting_op, &b, None, &opts, &SkepticalConfig::trusting());
        let skeptical_op = FaultyOperator::new(&a, Some(plan), 11);
        let (s_out, s_rep) =
            skeptical_gmres(&skeptical_op, &b, None, &opts, &SkepticalConfig::default());

        println!(
            "{:<28} {:>10} {:>8} {:>14.2e}",
            format!("trusting GMRES (bit {bit})"),
            t_out.converged(),
            t_out.iterations,
            true_relative_residual(&a, &b, &t_out.x)
        );
        println!(
            "{:<28} {:>10} {:>8} {:>14.2e}  ({} detection(s))",
            format!("skeptical GMRES (bit {bit})"),
            s_out.converged(),
            s_out.iterations,
            true_relative_residual(&a, &b, &s_out.x),
            s_rep.detections
        );
    }

    println!("\nFT-GMRES with an unreliable inner solver (fault-rate sweep):");
    for rate in [0.0, 1e-5, 1e-4, 1e-3] {
        let cfg = FtGmresConfig {
            outer: SolveOptions::default()
                .with_tol(1e-8)
                .with_max_iters(60)
                .with_restart(30),
            fault_rate: rate,
            ..FtGmresConfig::default()
        };
        let (out, report) = ft_gmres(&a, &b, &cfg);
        println!(
            "  rate {rate:>7.0e}: converged={}, outer iters={}, corruptions={}, true res={:.2e}",
            out.converged(),
            out.iterations,
            report.corruptions,
            true_relative_residual(&a, &b, &out.x)
        );
    }
}
