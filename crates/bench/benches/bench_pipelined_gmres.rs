//! E3 bench: classic vs. pipelined distributed solvers (simulation wall time;
//! virtual-time comparisons are produced by exp_latency).

use criterion::{criterion_group, criterion_main, Criterion};
use resilience::prelude::*;
use resilient_linalg::poisson2d;
use resilient_runtime::{LatencyModel, Runtime, RuntimeConfig};
use std::time::Duration;

fn solve(pipelined: bool, use_gmres: bool) -> f64 {
    let mut cfg = RuntimeConfig::fast();
    cfg.latency = LatencyModel {
        alpha: 1e-4,
        beta: 0.0,
        gamma: 0.0,
    };
    let rt = Runtime::new(cfg);
    let r = rt.run(4, move |comm| {
        let a = poisson2d(12, 12);
        let da = DistCsr::from_global(comm, &a)?;
        let b = DistVector::from_fn(comm, a.nrows(), |i| 1.0 + (i % 3) as f64);
        let opts = DistSolveOptions::default()
            .with_tol(1e-7)
            .with_max_iters(150)
            .with_restart(40);
        let out = match (pipelined, use_gmres) {
            (false, false) => dist_cg(comm, &da, &b, &opts)?,
            (true, false) => pipelined_cg(comm, &da, &b, &opts)?,
            (false, true) => dist_gmres(comm, &da, &b, &opts)?,
            (true, true) => pipelined_gmres(comm, &da, &b, &opts)?,
        };
        Ok(out.iterations as f64)
    });
    r.job.makespan
}

fn bench_pipelined(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_krylov_sim");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    group.bench_function("cg_classic", |b| {
        b.iter(|| std::hint::black_box(solve(false, false)))
    });
    group.bench_function("cg_pipelined", |b| {
        b.iter(|| std::hint::black_box(solve(true, false)))
    });
    group.bench_function("gmres_classic", |b| {
        b.iter(|| std::hint::black_box(solve(false, true)))
    });
    group.bench_function("gmres_pipelined", |b| {
        b.iter(|| std::hint::black_box(solve(true, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipelined);
criterion_main!(benches);
