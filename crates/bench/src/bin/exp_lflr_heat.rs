//! Experiment E4 — LFLR vs. global checkpoint/restart for the explicit heat
//! equation (LFLR, §II-C / §III-C): total time to solution under injected
//! rank failures, as the rank count grows (weak scaling of the recovery
//! cost).

use resilience::lflr::{run_cpr, run_lflr, CprConfig};
use resilient_bench::{fmt_g, fmt_ratio, Table};
use resilient_pde::{ExplicitHeat, HeatProblem};
use resilient_runtime::{FailureConfig, FailurePolicy, LatencyModel, Runtime, RuntimeConfig};
use std::sync::Arc;

fn app(n: usize, steps: usize) -> ExplicitHeat {
    ExplicitHeat {
        problem: HeatProblem::stable(n, 1.0),
        steps,
        persist_interval: 5,
        work_per_step: 5.0e-3,
    }
}

fn base_config(checkpoint_cost: f64) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::fast().with_seed(21);
    cfg.latency = LatencyModel {
        alpha: 5.0e-6,
        beta: 1e-9,
        gamma: 1e-9,
    };
    cfg.checkpoint_seconds_per_byte = checkpoint_cost;
    cfg.restart_cost = 2.0;
    cfg.replacement_cost = 0.05;
    cfg
}

fn lflr_time(ranks: usize, n: usize, steps: usize, failures: Vec<(usize, f64)>) -> (f64, usize) {
    let cfg = base_config(2.0e-8).with_failures(FailureConfig::scheduled(
        FailurePolicy::ReplaceRank,
        failures,
    ));
    let rt = Runtime::new(cfg);
    let heat = app(n, steps);
    let r = rt.run(ranks, move |comm| {
        let (report, _state) = run_lflr(comm, &heat)?;
        Ok(report)
    });
    assert!(r.all_ok(), "LFLR run failed: {:?}", r.errors);
    (r.job.makespan, r.failures.len())
}

fn cpr_time(ranks: usize, n: usize, steps: usize, failures: Vec<(usize, f64)>) -> (f64, usize) {
    let mut cfg = base_config(2.0e-8);
    cfg.failures = FailureConfig {
        enabled: !failures.is_empty(),
        policy: FailurePolicy::AbortJob,
        mtbf_per_rank: f64::INFINITY,
        scheduled: failures,
        max_failures: 1,
    };
    let report = run_cpr(
        &cfg,
        ranks,
        Arc::new(app(n, steps)),
        &CprConfig {
            checkpoint_interval: 5,
            max_restarts: 8,
        },
    );
    assert!(report.completed, "CPR run did not complete: {report:?}");
    (report.total_virtual_time, report.failures)
}

fn main() {
    let steps = 60;
    let per_rank_points = 64; // weak scaling: grid grows with the rank count
    let mut table = Table::new(
        "E4: explicit heat, one rank failure mid-run — LFLR vs global CPR (virtual s)",
        &[
            "ranks",
            "grid n",
            "failure-free",
            "LFLR w/ failure",
            "CPR w/ failure",
            "LFLR overhead",
            "CPR overhead",
        ],
    );
    for &ranks in &[4usize, 8, 16, 32] {
        let n = per_rank_points * ranks;
        let fail = vec![(ranks / 2, 0.17)];
        let (clean, _) = lflr_time(ranks, n, steps, vec![]);
        let (lflr, lflr_failures) = lflr_time(ranks, n, steps, fail.clone());
        let (cpr, cpr_failures) = cpr_time(ranks, n, steps, fail);
        assert_eq!(lflr_failures, 1);
        assert_eq!(cpr_failures, 1);
        table.row(vec![
            ranks.to_string(),
            n.to_string(),
            fmt_g(clean),
            fmt_g(lflr),
            fmt_g(cpr),
            fmt_ratio(lflr / clean),
            fmt_ratio(cpr / clean),
        ]);
    }
    table.emit("e4_lflr_vs_cpr");
}
