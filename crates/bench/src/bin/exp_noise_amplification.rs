//! Experiment E8 — noise amplification by blocking collectives (RBSP,
//! §II-B): a bulk-synchronous compute+allreduce step versus the same step
//! with the reduction overlapped, as the rank count grows.

use resilient_bench::{fmt_g, fmt_ratio, Table};
use resilient_runtime::{LatencyModel, NoiseConfig, ReduceOp, Runtime, RuntimeConfig};

fn step_times(ranks: usize, noise_amp: f64, steps: usize) -> (f64, f64, f64) {
    let work = 1.0e-3;
    let mut cfg = RuntimeConfig::fast().with_seed(5);
    cfg.latency = LatencyModel {
        alpha: 1.0e-6,
        beta: 0.0,
        gamma: 0.0,
    };
    if noise_amp > 0.0 {
        cfg.noise = NoiseConfig::exponential(200.0, noise_amp);
    }
    let rt = Runtime::new(cfg);
    let result = rt.run(ranks, move |comm| {
        // Bulk-synchronous: compute then blocking allreduce.
        let t0 = comm.now();
        for _ in 0..steps {
            comm.advance(work);
            comm.allreduce_scalar(ReduceOp::Sum, 1.0)?;
        }
        let bulk = comm.now() - t0;
        // Relaxed: post the reduction, overlap the next compute block, wait.
        let t1 = comm.now();
        let mut pending = comm.iallreduce_scalar(ReduceOp::Sum, 1.0)?;
        for _ in 0..steps {
            comm.advance(work);
            let next = comm.iallreduce_scalar(ReduceOp::Sum, 1.0)?;
            pending.wait_scalar(comm)?;
            pending = next;
        }
        pending.wait_scalar(comm)?;
        let relaxed = comm.now() - t1;
        Ok((bulk, relaxed))
    });
    let per_rank = result.unwrap_all();
    let bulk = per_rank.iter().map(|r| r.0).fold(0.0f64, f64::max);
    let relaxed = per_rank.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let ideal = steps as f64 * work;
    (bulk, relaxed, ideal)
}

fn main() {
    let steps = 150;
    let mut table = Table::new(
        "E8: noise amplification of a compute+allreduce step (150 steps, 1 ms work/step)",
        &[
            "ranks",
            "noise/step",
            "bulk-sync",
            "relaxed",
            "bulk slowdown",
            "relaxed slowdown",
        ],
    );
    for &ranks in &[4usize, 16, 64, 128] {
        for &amp in &[0.0, 1.0e-4, 5.0e-4] {
            let (bulk, relaxed, ideal) = step_times(ranks, amp, steps);
            table.row(vec![
                ranks.to_string(),
                format!("{amp:.0e}"),
                fmt_g(bulk),
                fmt_g(relaxed),
                fmt_ratio(bulk / ideal),
                fmt_ratio(relaxed / ideal),
            ]);
        }
    }
    table.emit("e8_noise_amplification");
}
