//! # resilient-pde
//!
//! Domain-decomposed PDE applications exercising the paper's §III-C
//! "locally restarted PDE computations":
//!
//! * [`heat1d`] — the serial 1-D heat-equation reference with an analytic
//!   solution for verification;
//! * [`explicit`] — distributed explicit stepping implementing both the
//!   LFLR and the checkpoint/restart application contracts;
//! * [`implicit`] — backward-Euler stepping via distributed CG with
//!   pluggable lost-state recovery;
//! * [`coarse`] — the redundant coarse-model restriction/prolongation used
//!   to bootstrap implicit-state recovery.

#![warn(missing_docs)]

pub mod coarse;
pub mod explicit;
pub mod heat1d;
pub mod implicit;

pub use coarse::{prolongate, restrict, round_trip_error};
pub use explicit::{ExplicitHeat, LocalField};
pub use heat1d::HeatProblem;
pub use implicit::{
    backward_euler_matrix, lost_state_recovery_error, ImplicitHeat, ImplicitRecovery,
};
