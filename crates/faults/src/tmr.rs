//! Triple modular redundancy (TMR).
//!
//! §II-D notes that "even very expensive approaches such as triple modular
//! redundancy can still be much faster than a fully unreliable approach".
//! [`tmr_execute`] runs a fallible computation three times and majority-votes
//! the results; [`TmrStats`] keeps the bookkeeping the E7 ablation reports.

/// Outcome of a TMR-protected execution.
#[derive(Debug, Clone, PartialEq)]
pub enum TmrOutcome<T> {
    /// At least two replicas agreed.
    Agreed {
        /// The agreed value.
        value: T,
        /// True if one replica disagreed (an error was masked).
        masked_error: bool,
    },
    /// All three replicas disagreed: the error is detected but cannot be
    /// masked.
    NoMajority {
        /// The three replica outputs, for diagnostics.
        replicas: [T; 3],
    },
}

impl<T> TmrOutcome<T> {
    /// The agreed value, if any.
    pub fn value(self) -> Option<T> {
        match self {
            TmrOutcome::Agreed { value, .. } => Some(value),
            TmrOutcome::NoMajority { .. } => None,
        }
    }

    /// Did the vote succeed?
    pub fn is_agreed(&self) -> bool {
        matches!(self, TmrOutcome::Agreed { .. })
    }
}

/// Execute `f` three times and majority-vote the results using `eq` as the
/// agreement predicate (exact equality is usually wrong for floating point;
/// pass a tolerance-aware closure).
pub fn tmr_execute<T, F, E>(mut f: F, eq: E) -> TmrOutcome<T>
where
    F: FnMut(usize) -> T,
    E: Fn(&T, &T) -> bool,
    T: Clone,
{
    let a = f(0);
    let b = f(1);
    let c = f(2);
    if eq(&a, &b) || eq(&a, &c) {
        let masked = !(eq(&a, &b) && eq(&a, &c));
        TmrOutcome::Agreed {
            value: a,
            masked_error: masked,
        }
    } else if eq(&b, &c) {
        TmrOutcome::Agreed {
            value: b,
            masked_error: true,
        }
    } else {
        TmrOutcome::NoMajority {
            replicas: [a, b, c],
        }
    }
}

/// Vote over three `f64` vectors element-wise with a relative tolerance.
/// Returns the element-wise majority (or `None` where all three disagree,
/// in which case the whole vote fails).
pub fn tmr_vote_vectors(a: &[f64], b: &[f64], c: &[f64], rel_tol: f64) -> Option<Vec<f64>> {
    if a.len() != b.len() || a.len() != c.len() {
        return None;
    }
    let close = |x: f64, y: f64| {
        let scale = x.abs().max(y.abs()).max(1.0);
        (x - y).abs() <= rel_tol * scale
    };
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let v = if close(a[i], b[i]) || close(a[i], c[i]) {
            a[i]
        } else if close(b[i], c[i]) {
            b[i]
        } else {
            return None;
        };
        out.push(v);
    }
    Some(out)
}

/// Aggregate statistics of a TMR campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TmrStats {
    /// Total protected executions.
    pub executions: u64,
    /// Executions where all replicas agreed (no error present or all
    /// corrupted identically, which is vanishingly unlikely).
    pub unanimous: u64,
    /// Executions where one replica was out-voted (error masked).
    pub masked: u64,
    /// Executions with no majority (error detected, not masked).
    pub failed: u64,
}

impl TmrStats {
    /// Record one outcome.
    pub fn record<T>(&mut self, outcome: &TmrOutcome<T>) {
        self.executions += 1;
        match outcome {
            TmrOutcome::Agreed {
                masked_error: false,
                ..
            } => self.unanimous += 1,
            TmrOutcome::Agreed {
                masked_error: true, ..
            } => self.masked += 1,
            TmrOutcome::NoMajority { .. } => self.failed += 1,
        }
    }

    /// Fraction of executions whose error was masked or absent.
    pub fn success_rate(&self) -> f64 {
        if self.executions == 0 {
            return 1.0;
        }
        (self.unanimous + self.masked) as f64 / self.executions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_agreement() {
        let out = tmr_execute(|_| 42, |a, b| a == b);
        assert_eq!(
            out,
            TmrOutcome::Agreed {
                value: 42,
                masked_error: false
            }
        );
        assert!(out.is_agreed());
    }

    #[test]
    fn single_disagreement_is_masked() {
        // Replica 1 is corrupted.
        let out = tmr_execute(|i| if i == 1 { 99 } else { 7 }, |a, b| a == b);
        assert_eq!(
            out,
            TmrOutcome::Agreed {
                value: 7,
                masked_error: true
            }
        );
        // Replica 0 corrupted: majority is still found via b == c.
        let out = tmr_execute(|i| if i == 0 { 99 } else { 7 }, |a, b| a == b);
        assert_eq!(out.clone().value(), Some(7));
        match out {
            TmrOutcome::Agreed { masked_error, .. } => assert!(masked_error),
            _ => panic!(),
        }
    }

    #[test]
    fn total_disagreement_fails() {
        let out = tmr_execute(|i| i as i64 * 10, |a, b| a == b);
        assert!(!out.is_agreed());
        assert_eq!(out.value(), None);
    }

    #[test]
    fn vector_vote_masks_elementwise() {
        let clean = vec![1.0, 2.0, 3.0];
        let mut corrupted = clean.clone();
        corrupted[1] = 100.0;
        let voted = tmr_vote_vectors(&clean, &corrupted, &clean, 1e-12).unwrap();
        assert_eq!(voted, clean);
        let voted = tmr_vote_vectors(&corrupted, &clean, &clean, 1e-12).unwrap();
        assert_eq!(voted, clean);
    }

    #[test]
    fn vector_vote_fails_on_three_way_disagreement() {
        assert!(tmr_vote_vectors(&[1.0], &[2.0], &[3.0], 1e-12).is_none());
        assert!(tmr_vote_vectors(&[1.0], &[1.0, 2.0], &[1.0], 1e-12).is_none());
    }

    #[test]
    fn vector_vote_respects_tolerance() {
        let a = [1.0, 2.0];
        let b = [1.0 + 1e-14, 2.0];
        let c = [5.0, 2.0 - 1e-14];
        let voted = tmr_vote_vectors(&a, &b, &c, 1e-12).unwrap();
        assert_eq!(voted, vec![1.0, 2.0]);
    }

    #[test]
    fn stats_accumulate() {
        let mut stats = TmrStats::default();
        stats.record(&tmr_execute(|_| 1, |a, b| a == b));
        stats.record(&tmr_execute(|i| if i == 2 { 0 } else { 1 }, |a, b| a == b));
        stats.record(&tmr_execute(|i| i, |a, b| a == b));
        assert_eq!(stats.executions, 3);
        assert_eq!(stats.unanimous, 1);
        assert_eq!(stats.masked, 1);
        assert_eq!(stats.failed, 1);
        assert!((stats.success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(TmrStats::default().success_rate(), 1.0);
    }
}
