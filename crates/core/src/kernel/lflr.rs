//! Process-failure recovery for distributed Krylov solves (LFLR × kernel).
//!
//! The step-loop driver in [`crate::lflr`] reproduces the paper's
//! local-failure-local-recovery model for *time-stepping* applications; this
//! module closes the same pillar for the unified Krylov kernel: a rank can
//! die in the middle of a distributed preconditioned solve and the job
//! resumes **mid-solve** from persisted per-rank state instead of restarting
//! from iteration zero.
//!
//! The protocol, mirroring [`run_lflr`](crate::lflr::run_lflr):
//!
//! 1. **Persist.** An [`IterateRollbackPolicy`] with
//!    [`with_persistence`](IterateRollbackPolicy::with_persistence) rides in
//!    the solve's policy stack and writes the minimal per-rank Krylov state
//!    — the committed iterate plus the global step counter — through
//!    [`Comm::persist`] on a configurable iteration cadence, pruning old
//!    snapshots to a skew-safe window. Everything else is rebuilt, not
//!    restored: the CG recurrence vectors from one operator application
//!    (`r = b − A·x`, the same rebuild hook policy restarts use), the GMRES
//!    cycle from the restart iterate, and the [`BlockJacobi`]
//!    preconditioner locally from [`DistCsr::local_diagonal_block`] — zero
//!    extra collectives.
//! 2. **Detect.** When a rank dies, the survivors' next collective returns a
//!    failure error that unwinds out of `run_cg`/`run_gmres`; under the
//!    `ReplaceRank` policy the launcher spawns a replacement incarnation.
//! 3. **Agree.** Every world rank joins the recovery rendezvous proposing
//!    the newest step it holds a snapshot for — the replacement proposes
//!    what it can recover from the dead incarnation's *inherited* partition
//!    (the kernel-level analogue of
//!    [`LflrApp::last_recoverable`](crate::lflr::LflrApp::last_recoverable))
//!    — and the minimum wins, so the agreed step is never newer than what
//!    the dead rank actually persisted.
//! 4. **Resume.** Each rank restores its local part of the agreed snapshot
//!    as the warm start of a re-entered solve: survivors roll back in
//!    lockstep, the replacement adopts its predecessor's state, and the
//!    solve continues with `max_iters` reduced by the steps already in the
//!    bank.
//!
//! [`Comm::persist`]: resilient_runtime::Comm::persist
//!
//! The presets ([`lflr_dist_pcg`], [`lflr_pipelined_pcg`],
//! [`lflr_dist_pgmres`], [`lflr_pipelined_pgmres`]) run the block-Jacobi
//! preconditioned distributed solvers under this protocol and open the
//! failure × latency × preconditioning scenario grid measured by
//! `exp_krylov_lflr`, which compares mid-solve resume against the
//! restart-from-zero baseline ([`KrylovLflrConfig::restart_from_zero`]).

use resilient_linalg::CsrMatrix;
use resilient_runtime::{CommBackend, ReduceOp, Result};

use super::cg::{run_cg, FusedCgStep, PipelinedCgStep};
use super::gmres::{run_gmres, CgsOrtho, GmresFlavor, PipelinedOrtho};
use super::policy::{
    snapshot_key, IterateRollbackPolicy, PolicyOverhead, PolicyStack, SNAPSHOT_META_KEY,
};
use super::precond::{BlockJacobi, RightPrecond};
use super::space::DistSpace;
use crate::distributed::{DistCsr, DistVector};
use crate::rbsp::{DistSolveOptions, DistSolveOutcome};

/// Configuration of a process-failure-recovering Krylov solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KrylovLflrConfig {
    /// Snapshot cadence in kernel iterations (the persist interval of the
    /// rollback policy).
    pub persist_every: usize,
    /// Snapshots retained per rank before the oldest is pruned with
    /// [`Comm::unpersist`](resilient_runtime::Comm::unpersist). Three is the
    /// proven floor (one point of collective-bounded iteration skew plus one
    /// point of die-before-persist lag — see
    /// [`IterateRollbackPolicy::with_persistence`]); the default keeps one
    /// extra point of slack.
    pub keep_last: usize,
    /// Recovery rendezvous this rank will join before giving up and
    /// returning the failure error (a backstop against pathological failure
    /// schedules; the runtime's `max_failures` usually binds first).
    pub max_recoveries: usize,
    /// `true` (default): resume from the agreed persisted snapshot.
    /// `false`: the restart-from-zero baseline — no snapshots are written
    /// (no checkpoint-bandwidth cost) and every recovery restarts the solve
    /// from iteration 0, which is what `exp_krylov_lflr` compares against.
    pub resume: bool,
}

impl Default for KrylovLflrConfig {
    fn default() -> Self {
        Self {
            persist_every: 10,
            keep_last: 4,
            max_recoveries: 8,
            resume: true,
        }
    }
}

impl KrylovLflrConfig {
    /// Builder-style persist cadence.
    pub fn with_persist_every(mut self, every: usize) -> Self {
        self.persist_every = every.max(1);
        self
    }

    /// Builder-style pruning window.
    pub fn with_keep_last(mut self, keep_last: usize) -> Self {
        self.keep_last = keep_last.max(1);
        self
    }

    /// The restart-from-zero baseline configuration (no persistence; every
    /// recovery starts over).
    pub fn restart_from_zero(mut self) -> Self {
        self.resume = false;
        self
    }
}

/// What happened during one process-failure-recovering solve (per rank).
#[derive(Debug, Clone, Default)]
pub struct KrylovLflrReport {
    /// Recovery rendezvous this rank participated in.
    pub recoveries: usize,
    /// Agreed resume step of the most recent recovery (0 when no recovery
    /// happened, or when resuming from scratch).
    pub resumed_from: usize,
    /// Global iterations to convergence: the resume step already in the bank
    /// plus the final attempt's kernel iterations.
    pub iterations: usize,
    /// Snapshots written to the persistent store, across all attempts.
    pub snapshots_persisted: usize,
    /// Recoveries in which this rank's snapshot at the agreed step was
    /// missing and the local part fell back to zeros (still a valid warm
    /// start — any iterate is an initial guess — but costs iterations;
    /// a correctly sized pruning window keeps this at 0).
    pub fallback_restores: usize,
    /// Per-policy overhead of the final attempt, in stack order.
    pub policy: Vec<PolicyOverhead>,
}

/// Which kernel × strategy composition a preset drives under the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LflrKrylov {
    /// Block-Jacobi preconditioned bulk-synchronous CG ([`FusedCgStep`]).
    FusedPcg,
    /// Block-Jacobi preconditioned pipelined CG ([`PipelinedCgStep`]).
    PipelinedPcg,
    /// Right-preconditioned bulk-synchronous GMRES ([`CgsOrtho`]).
    CgsPgmres,
    /// Right-preconditioned p(1)-pipelined GMRES ([`PipelinedOrtho`]).
    PipelinedPgmres,
}

/// The newest step this rank holds a restorable snapshot for in its
/// (possibly inherited) persistent partition — what it proposes at the
/// recovery rendezvous.
fn newest_snapshot_step<C: CommBackend>(comm: &mut C) -> Option<usize> {
    let me = comm.rank();
    if !comm.persisted(me, SNAPSHOT_META_KEY) {
        return None;
    }
    let step = comm
        .restore(me, SNAPSHOT_META_KEY)
        .ok()?
        .into_scalar()
        .ok()? as usize;
    // The meta key always points at the newest snapshot, which pruning
    // never removes; verify anyway so a proposal is always honourable.
    comm.persisted(me, &snapshot_key(step)).then_some(step)
}

/// Restore this rank's local part of the snapshot at `step`, shaped like
/// `like`; `None` when absent or from a different distribution.
fn restore_local_snapshot<C: CommBackend>(
    comm: &mut C,
    step: usize,
    like: &DistVector,
) -> Result<Option<DistVector>> {
    let me = comm.rank();
    let key = snapshot_key(step);
    if !comm.persisted(me, &key) {
        return Ok(None);
    }
    let local = comm.restore(me, &key)?.into_f64()?;
    if local.len() != like.local_len() {
        return Ok(None);
    }
    let mut x = like.clone();
    x.local = local;
    Ok(Some(x))
}

/// Join the post-failure rendezvous, proposing this rank's newest snapshot
/// (or 0 — "I can only start over" — in restart-from-zero mode or with an
/// empty store), and return the agreed resume step.
///
/// The rendezvous itself can be interrupted by a *further* failure — a
/// rank dying while the agreement for the previous death is still in
/// flight (the fault campaign's rendezvous-death family). The interrupted
/// survivors and the replacement must then simply rendezvous again for
/// the newer failure generation; letting the error escape instead makes
/// this rank abandon the job while its peers block in a collective that
/// can never complete — a deadlock, the one outcome the protocol exists
/// to prevent. Retries are bounded by the same `max_recoveries` give-up
/// knob as completed recoveries.
fn rejoin<C: CommBackend>(
    comm: &mut C,
    cfg: &KrylovLflrConfig,
    report: &mut KrylovLflrReport,
) -> Result<usize> {
    let mut interrupted = 0usize;
    loop {
        let proposal = if cfg.resume {
            newest_snapshot_step(comm).unwrap_or(0)
        } else {
            0
        };
        let info = match comm.recovery_rendezvous(proposal as f64) {
            Ok(info) => info,
            Err(e) if e.is_failure() && report.recoveries + interrupted < cfg.max_recoveries => {
                interrupted += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        report.recoveries += 1;
        let agreed = if info.agreed.is_finite() {
            info.agreed.max(0.0) as usize
        } else {
            0
        };
        report.resumed_from = agreed;
        return Ok(agreed);
    }
}

/// One solve attempt in the current communication epoch: (re)build the
/// distributed operator, the local block-Jacobi factorization and the
/// persisting rollback policy, warm-start from the agreed snapshot, and run
/// the kernel.
#[allow(clippy::too_many_arguments)]
fn attempt<C: CommBackend>(
    comm: &mut C,
    a_global: &CsrMatrix,
    b_global: &[f64],
    opts: &DistSolveOptions,
    cfg: &KrylovLflrConfig,
    solver: LflrKrylov,
    resume: Option<usize>,
    report: &mut KrylovLflrReport,
) -> Result<DistSolveOutcome> {
    let da = DistCsr::from_global(comm, a_global)?;
    let b = DistVector::from_global(comm, b_global);
    // The preconditioner is *rebuilt*, never restored: each rank re-factors
    // its own diagonal block locally — zero extra collectives.
    let mut bj = BlockJacobi::new(&da);

    let resume_step = if cfg.resume { resume.unwrap_or(0) } else { 0 };
    let x0 = if cfg.resume && resume.is_some() {
        match restore_local_snapshot(comm, resume_step, &b)? {
            Some(x) => Some(x),
            None => {
                report.fallback_restores += 1;
                None
            }
        }
    } else {
        None
    };

    let mut rollback: IterateRollbackPolicy<DistVector> = IterateRollbackPolicy::new(1);
    if cfg.resume {
        rollback = rollback.with_persistence(cfg.persist_every, cfg.keep_last);
        if resume.is_some() {
            rollback = rollback.resuming_from(resume_step);
        }
    }

    // Steps already in the bank shrink the remaining iteration budget so a
    // resumed solve honours the caller's original cap.
    let sopts = opts
        .solve_options()
        .with_max_iters(opts.max_iters.saturating_sub(resume_step).max(1));
    let mut space = DistSpace::new(comm, &da)
        .with_ops(opts.local_ops())
        .with_extra_work(opts.extra_work_per_iter);
    let mut policies = PolicyStack::new(vec![&mut rollback]);
    let result = match solver {
        LflrKrylov::FusedPcg => run_cg(
            &mut space,
            &b,
            x0,
            &sopts,
            &mut FusedCgStep::preconditioned(&mut bj),
            &mut policies,
        ),
        LflrKrylov::PipelinedPcg => run_cg(
            &mut space,
            &b,
            x0,
            &sopts,
            &mut PipelinedCgStep::preconditioned(&mut bj),
            &mut policies,
        ),
        LflrKrylov::CgsPgmres => {
            let mut right = RightPrecond(&mut bj);
            run_gmres(
                &mut space,
                &b,
                x0,
                &sopts,
                &mut CgsOrtho::new(),
                &mut policies,
                Some(&mut right),
                &GmresFlavor::distributed(),
            )
        }
        LflrKrylov::PipelinedPgmres => {
            let mut right = RightPrecond(&mut bj);
            run_gmres(
                &mut space,
                &b,
                x0,
                &sopts,
                &mut PipelinedOrtho::new(),
                &mut policies,
                Some(&mut right),
                &GmresFlavor::distributed(),
            )
        }
    };
    drop(policies);
    // Count snapshots even when the attempt died mid-solve: the store
    // traffic happened either way.
    report.snapshots_persisted += rollback.snapshots_persisted();
    let (outcome, kernel_report) = result?;
    report.policy = kernel_report.policy_overhead;
    report.iterations = resume_step + outcome.iterations;
    Ok(outcome.into_dist_outcome(opts.tol))
}

/// Drive one distributed solve to completion under the LFLR protocol. Call
/// from inside an SPMD closure launched with the
/// [`ReplaceRank`](resilient_runtime::FailurePolicy::ReplaceRank) policy.
fn run_krylov_lflr<C: CommBackend>(
    comm: &mut C,
    a_global: &CsrMatrix,
    b_global: &[f64],
    opts: &DistSolveOptions,
    cfg: &KrylovLflrConfig,
    solver: LflrKrylov,
) -> Result<(DistSolveOutcome, KrylovLflrReport)> {
    let mut report = KrylovLflrReport::default();
    let mut resume: Option<usize> = None;

    // A freshly spawned replacement has no solve state at all: before any
    // collective it joins the rendezvous its peers are waiting in, proposing
    // the newest step recoverable from the inherited partition. (The
    // recoveries guard keeps a replacement that already recovered — e.g. a
    // second solve on the same communicator — from posting a rendezvous
    // nobody else will join.)
    if comm.is_replacement() && comm.recoveries() == 0 {
        resume = Some(rejoin(comm, cfg, &mut report)?);
    }

    let mut outcome: Option<DistSolveOutcome> = None;
    loop {
        if outcome.is_none() {
            match attempt(
                comm,
                a_global,
                b_global,
                opts,
                cfg,
                solver,
                resume,
                &mut report,
            ) {
                Ok(o) => outcome = Some(o),
                Err(e) if e.is_failure() && report.recoveries < cfg.max_recoveries => {
                    resume = Some(rejoin(comm, cfg, &mut report)?);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        // Completion agreement (the run_lflr pattern): a failure arriving
        // after this rank converged — a replacement spawning late — still
        // finds every rank willing to re-enter recovery and re-run the tail
        // of the solve together with it.
        match comm.allreduce_scalar(ReduceOp::Min, 1.0) {
            Ok(_) => break,
            Err(e) if e.is_failure() && report.recoveries < cfg.max_recoveries => {
                resume = Some(rejoin(comm, cfg, &mut report)?);
                outcome = None;
            }
            Err(e) => return Err(e),
        }
    }

    // Retire the resume metadata so a later solve on this communicator
    // starts fresh; the (at most `keep_last`) snapshots themselves bound the
    // store footprint and are overwritten by the next persisting solve.
    comm.unpersist(SNAPSHOT_META_KEY);
    Ok((outcome.expect("loop only exits with an outcome"), report))
}

/// Block-Jacobi preconditioned bulk-synchronous CG
/// ([`rbsp::dist_pcg`](crate::rbsp::cg::dist_pcg)) that survives process
/// failure mid-solve: per-rank snapshots through `Comm::persist`, agreed
/// rollback, replacement-rank resume.
pub fn lflr_dist_pcg<C: CommBackend>(
    comm: &mut C,
    a_global: &CsrMatrix,
    b_global: &[f64],
    opts: &DistSolveOptions,
    cfg: &KrylovLflrConfig,
) -> Result<(DistSolveOutcome, KrylovLflrReport)> {
    run_krylov_lflr(comm, a_global, b_global, opts, cfg, LflrKrylov::FusedPcg)
}

/// Block-Jacobi preconditioned pipelined CG
/// ([`rbsp::pipelined_pcg`](crate::rbsp::cg::pipelined_pcg)) under the
/// process-failure recovery protocol — latency hiding, preconditioning and
/// mid-solve failure survival composed.
pub fn lflr_pipelined_pcg<C: CommBackend>(
    comm: &mut C,
    a_global: &CsrMatrix,
    b_global: &[f64],
    opts: &DistSolveOptions,
    cfg: &KrylovLflrConfig,
) -> Result<(DistSolveOutcome, KrylovLflrReport)> {
    run_krylov_lflr(
        comm,
        a_global,
        b_global,
        opts,
        cfg,
        LflrKrylov::PipelinedPcg,
    )
}

/// Right-preconditioned bulk-synchronous GMRES
/// ([`rbsp::dist_pgmres`](crate::rbsp::gmres::dist_pgmres)) under the
/// process-failure recovery protocol: the restart iterate is the persisted
/// unit of progress, so a resumed solve re-enters at the last snapshotted
/// cycle boundary.
pub fn lflr_dist_pgmres<C: CommBackend>(
    comm: &mut C,
    a_global: &CsrMatrix,
    b_global: &[f64],
    opts: &DistSolveOptions,
    cfg: &KrylovLflrConfig,
) -> Result<(DistSolveOutcome, KrylovLflrReport)> {
    run_krylov_lflr(comm, a_global, b_global, opts, cfg, LflrKrylov::CgsPgmres)
}

/// Right-preconditioned p(1)-pipelined GMRES
/// ([`rbsp::pipelined_pgmres`](crate::rbsp::gmres::pipelined_pgmres)) under
/// the process-failure recovery protocol.
pub fn lflr_pipelined_pgmres<C: CommBackend>(
    comm: &mut C,
    a_global: &CsrMatrix,
    b_global: &[f64],
    opts: &DistSolveOptions,
    cfg: &KrylovLflrConfig,
) -> Result<(DistSolveOutcome, KrylovLflrReport)> {
    run_krylov_lflr(
        comm,
        a_global,
        b_global,
        opts,
        cfg,
        LflrKrylov::PipelinedPgmres,
    )
}
