//! Model-problem generators.
//!
//! The resilient-solver experiments all run on the standard model problems
//! of the papers the position paper cites: finite-difference Laplacians in
//! one, two and three dimensions, plus random diagonally dominant and SPD
//! matrices for stress tests.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::sparse::{CooMatrix, CsrMatrix};

/// 1-D Poisson (tridiagonal) matrix of order `n`: 2 on the diagonal, −1 on
/// the off-diagonals. Symmetric positive definite.
pub fn poisson1d(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.0);
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
        }
    }
    coo.to_csr()
}

/// 2-D Poisson matrix for an `nx × ny` grid with the 5-point stencil
/// (Dirichlet boundary): order `nx·ny`, 4 on the diagonal, −1 couplings.
/// Symmetric positive definite.
pub fn poisson2d(nx: usize, ny: usize) -> CsrMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            let row = idx(i, j);
            coo.push(row, row, 4.0);
            if i > 0 {
                coo.push(row, idx(i - 1, j), -1.0);
            }
            if i + 1 < nx {
                coo.push(row, idx(i + 1, j), -1.0);
            }
            if j > 0 {
                coo.push(row, idx(i, j - 1), -1.0);
            }
            if j + 1 < ny {
                coo.push(row, idx(i, j + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 3-D Poisson matrix for an `nx × ny × nz` grid with the 7-point stencil
/// (Dirichlet boundary). Symmetric positive definite.
pub fn poisson3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let row = idx(i, j, k);
                coo.push(row, row, 6.0);
                if i > 0 {
                    coo.push(row, idx(i - 1, j, k), -1.0);
                }
                if i + 1 < nx {
                    coo.push(row, idx(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    coo.push(row, idx(i, j - 1, k), -1.0);
                }
                if j + 1 < ny {
                    coo.push(row, idx(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    coo.push(row, idx(i, j, k - 1), -1.0);
                }
                if k + 1 < nz {
                    coo.push(row, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// Anisotropic, jumpy-coefficient 2-D diffusion matrix on an `nx × ny` grid
/// (5-point stencil, Dirichlet boundary): the discretization of
/// `−∇·(κ(x)·diag(eps_x, 1)·∇u)` with strong coupling along grid lines
/// (the `j` direction, contiguous under block-row distribution), weak
/// coupling `eps_x` across lines, and the scalar coefficient `κ` jumping
/// by `jump` between alternating horizontal bands of `band` lines.
///
/// Symmetric positive definite, but — unlike [`poisson2d`] — genuinely
/// ill-conditioned for small `eps_x` / large `jump`: the model problem the
/// preconditioning experiments use, where unpreconditioned Krylov iteration
/// counts explode while the strong couplings and the coefficient jumps both
/// live *inside* each rank's diagonal block, so block-Jacobi recovers them.
///
/// Edge coefficients use the geometric mean of the two adjacent cell
/// coefficients (symmetric by construction); each row's diagonal is the sum
/// of all four incident edge coefficients, boundary edges included, which
/// keeps the matrix SPD.
pub fn anisotropic2d(nx: usize, ny: usize, eps_x: f64, jump: f64, band: usize) -> CsrMatrix {
    assert!(eps_x > 0.0 && jump > 0.0 && band > 0);
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    // Cell coefficient: bands of `band` grid lines alternate κ = 1 / κ = jump.
    let kappa = |i: usize| if (i / band) % 2 == 0 { 1.0 } else { jump };
    let edge = |ka: f64, kb: f64| (ka * kb).sqrt();
    let mut coo = CooMatrix::new(n, n);
    for i in 0..nx {
        for j in 0..ny {
            let row = idx(i, j);
            let k = kappa(i);
            let mut diag = 0.0;
            // i-direction (across lines): weak coupling eps_x.
            let up = if i > 0 { edge(k, kappa(i - 1)) } else { k };
            diag += eps_x * up;
            if i > 0 {
                coo.push(row, idx(i - 1, j), -eps_x * up);
            }
            let down = if i + 1 < nx { edge(k, kappa(i + 1)) } else { k };
            diag += eps_x * down;
            if i + 1 < nx {
                coo.push(row, idx(i + 1, j), -eps_x * down);
            }
            // j-direction (along a line): full-strength coupling.
            diag += 2.0 * k;
            if j > 0 {
                coo.push(row, idx(i, j - 1), -k);
            }
            if j + 1 < ny {
                coo.push(row, idx(i, j + 1), -k);
            }
            coo.push(row, row, diag);
        }
    }
    coo.to_csr()
}

/// Random sparse, strictly diagonally dominant (hence non-singular) matrix
/// of order `n` with roughly `nnz_per_row` off-diagonal entries per row.
/// Not symmetric — used to exercise GMRES on a non-SPD problem.
pub fn diag_dominant_random(n: usize, nnz_per_row: usize, rng: &mut ChaCha8Rng) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        let mut off_sum = 0.0;
        for _ in 0..nnz_per_row {
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            let v: f64 = rng.gen_range(-1.0..1.0);
            off_sum += v.abs();
            coo.push(i, j, v);
        }
        coo.push(i, i, off_sum + 1.0 + rng.gen_range(0.0..1.0));
    }
    coo.to_csr()
}

/// Random symmetric positive-definite matrix `AᵀA + n·I` of order `n`
/// (dense pattern, small orders only). Used by property tests for CG.
pub fn spd_random(n: usize, rng: &mut ChaCha8Rng) -> CsrMatrix {
    let a: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut v = 0.0;
            for (k, row) in a.iter().enumerate() {
                v += row[i] * a[k][j];
            }
            if i == j {
                v += n as f64;
            }
            coo.push(i, j, v);
        }
    }
    coo.to_csr()
}

/// A right-hand side vector with entries all equal to one (the canonical
/// model-problem forcing term).
pub fn ones(n: usize) -> Vec<f64> {
    vec![1.0; n]
}

/// A random vector with entries in `[-1, 1]`.
pub fn random_vector(n: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dot, nrm2};
    use rand::SeedableRng;

    #[test]
    fn poisson1d_structure() {
        let a = poisson1d(5);
        assert_eq!(a.nrows(), 5);
        assert_eq!(a.nnz(), 13);
        assert_eq!(a.diagonal(), vec![2.0; 5]);
        // Row sums are zero in the interior, one at the boundary rows.
        assert_eq!(a.row_sums(), vec![1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn poisson2d_structure() {
        let a = poisson2d(3, 4);
        assert_eq!(a.nrows(), 12);
        assert_eq!(a.diagonal(), vec![4.0; 12]);
        // 5-point stencil nnz: 5*interior + boundary adjustments = 12*5 - 2*(3+4)
        assert_eq!(a.nnz(), 12 * 5 - 2 * (3 + 4));
        // Symmetry.
        assert_eq!(a.to_dense(), a.transpose().to_dense());
    }

    #[test]
    fn poisson3d_structure() {
        let a = poisson3d(2, 3, 2);
        assert_eq!(a.nrows(), 12);
        assert_eq!(a.diagonal(), vec![6.0; 12]);
        assert_eq!(a.to_dense(), a.transpose().to_dense());
    }

    #[test]
    fn poisson_matrices_are_positive_definite_on_samples() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for a in [poisson1d(10), poisson2d(4, 4), poisson3d(2, 2, 3)] {
            for _ in 0..5 {
                let x = random_vector(a.nrows(), &mut rng);
                if nrm2(&x) < 1e-12 {
                    continue;
                }
                let quad = dot(&x, &a.spmv(&x));
                assert!(quad > 0.0, "xᵀAx must be positive for SPD A");
            }
        }
    }

    #[test]
    fn anisotropic2d_is_symmetric_positive_definite() {
        let a = anisotropic2d(8, 6, 0.05, 1000.0, 2);
        assert_eq!(a.nrows(), 48);
        assert_eq!(a.to_dense(), a.transpose().to_dense());
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..5 {
            let x = random_vector(a.nrows(), &mut rng);
            if nrm2(&x) < 1e-12 {
                continue;
            }
            assert!(dot(&x, &a.spmv(&x)) > 0.0, "xᵀAx must be positive");
        }
        // The coefficient jump must actually show up in the diagonal.
        let d = a.diagonal();
        let dmax = d.iter().fold(0.0f64, |m, v| m.max(*v));
        let dmin = d.iter().fold(f64::INFINITY, |m, v| m.min(*v));
        assert!(dmax / dmin > 100.0, "jump missing: {dmax} / {dmin}");
    }

    #[test]
    fn diag_dominant_is_dominant() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = diag_dominant_random(50, 6, &mut rng);
        for i in 0..50 {
            let (cols, vals) = a.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i} not diagonally dominant");
        }
    }

    #[test]
    fn spd_random_is_symmetric_positive_definite() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let a = spd_random(8, &mut rng);
        assert_eq!(a.to_dense(), a.transpose().to_dense());
        for _ in 0..5 {
            let x = random_vector(8, &mut rng);
            assert!(dot(&x, &a.spmv(&x)) > 0.0);
        }
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(ones(3), vec![1.0, 1.0, 1.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = random_vector(10, &mut rng);
        assert_eq!(v.len(), 10);
        assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
    }
}
